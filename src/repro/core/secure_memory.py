"""Functional secure memory system: real crypto over a simulated DRAM.

This is the paper's memory controller, bit-exact: counter-mode (or direct)
AES encryption of every block leaving the chip, GCM or SHA-1 MACs organized
as a Merkle tree over data blocks *and* direct-counter blocks (Figure 3),
a counter cache, and RSR-driven page re-encryption on minor-counter
overflow.  Everything below the L2 — data ciphertext, counter blocks, and
Merkle code blocks — lives in an untrusted :class:`MainMemory` that the
attack suite can snoop and corrupt.

The timing twin (:mod:`repro.sim.timing_memory`) shares the configuration
and the counter/cache/tree structures but models only latencies; this class
models only values.  Functional time does not advance, so page
re-encryptions run synchronously to completion — the RSR overlap machinery
is exercised for its *state* transitions here and for its *timing* in the
simulator.

Memory map::

    [0, protected_bytes)                     data region (ciphertext)
    [protected_bytes, +counters)             counter blocks
    [.., +code blocks)                       Merkle code blocks

Initialization note: memory reads as zero until first written.  The Merkle
tree adopts a block on its first write-back (boot-time zeroing compressed
to first touch); reads of never-written blocks return zeros without a DRAM
access.  All attack experiments operate on blocks after legitimate writes,
where the full verification chain is active.
"""

from __future__ import annotations

from repro.auth.codes import build_flat_geometry, build_geometry
from repro.auth.merkle import IntegrityViolation, MerkleTree
from repro.auth.schemes import GCMMACScheme, MACScheme, SHAMACScheme
from repro.auth.secddr import SecDDRAuthenticator
from repro.core.config import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    IntegrityMode,
    SecureMemoryConfig,
)
from repro.core.rsr import RSRFile
from repro.core.stats import SecureMemoryStats
from repro.counters.base import CounterScheme, OverflowAction
from repro.counters.counter_cache import CounterCache
from repro.counters.global_ctr import GlobalCounterScheme
from repro.counters.monolithic import MonolithicCounterScheme
from repro.counters.prediction import CounterPredictionScheme
from repro.counters.split import SplitCounterScheme
from repro.crypto.aes import AES128
from repro.crypto.ctr import CHUNK_SIZE, bulk_ctr_transform, ctr_transform
from repro.crypto.sha1 import sha1
from repro.crypto.shamir import (
    coefficient_blocks,
    reconstruct_block,
    split_block,
)
from repro.crypto.vector import decrypt_blocks_kernel, resolve_kernel
from repro.memory.cache import Cache
from repro.memory.dram import MainMemory
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.recovery import (
    QuarantinedPageError,
    RecoveryController,
    RecoveryHalted,
)


def make_counter_scheme(config: SecureMemoryConfig) -> CounterScheme:
    """Instantiate the counter organization named by a config."""
    org = config.counter_org
    block = config.block_size
    if org is CounterOrg.SPLIT:
        return SplitCounterScheme(block_size=block,
                                  minor_bits=config.minor_bits)
    if org in (CounterOrg.MONO8, CounterOrg.MONO16, CounterOrg.MONO32,
               CounterOrg.MONO64):
        bits = {CounterOrg.MONO8: 8, CounterOrg.MONO16: 16,
                CounterOrg.MONO32: 32, CounterOrg.MONO64: 64}[org]
        return MonolithicCounterScheme(bits, block_size=block)
    if org is CounterOrg.GLOBAL32:
        return GlobalCounterScheme(32, block_size=block)
    if org is CounterOrg.GLOBAL64:
        return GlobalCounterScheme(64, block_size=block)
    if org is CounterOrg.PREDICTION:
        return CounterPredictionScheme(block_size=block,
                                       depth=config.prediction_depth)
    raise ValueError(f"unknown counter organization: {org}")


def _derive_key(base_key: bytes, label: bytes, epoch: int = 0) -> bytes:
    """Derive a 16-byte subkey from the platform key."""
    return sha1(base_key + label + epoch.to_bytes(8, "big"))[:16]


class SecureMemorySystem:
    """Functional secure memory controller with an L2 cache on top."""

    def __init__(self, config: SecureMemoryConfig,
                 protected_bytes: int = 1024 * 1024,
                 base_key: bytes = b"platform-master-key!",
                 l2_size: int | None = None, l2_assoc: int = 8,
                 dram_factory=None, tracer: Tracer | None = None):
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.block_size = config.block_size
        #: resolved crypto backend ("scalar"/"table"/"vector") for the
        #: batch paths; all backends produce identical bytes
        self.kernel = resolve_kernel(config.kernel)
        if protected_bytes % self.block_size:
            raise ValueError("protected_bytes must be block-aligned")
        self.protected_bytes = protected_bytes
        self.num_data_blocks = protected_bytes // self.block_size
        self._base_key = bytes(base_key)
        self._key_epoch = 0
        self._data_aes = AES128(_derive_key(self._base_key, b"data", 0))

        # Secret-shared layout (Secure Scattered Memory): each logical data
        # block is stored as n share blocks, share ``s`` of logical address
        # ``a`` living at DRAM address ``s * protected_bytes + a``.  Share 0
        # therefore occupies the classic data region, keeping every
        # logical-address consumer (attacks, oracle layouts) valid; shares
        # 1..n-1 extend the leaf space.  Non-shares configs collapse to
        # n = 1 and every expression below reduces to the historical layout.
        shares = config.encryption is EncryptionMode.SHARES
        self._shares_k = config.shares_k if shares else 1
        self._shares_n = config.shares_n if shares else 1
        self._num_data_leaves = self.num_data_blocks * self._shares_n
        self._data_region_bytes = self._num_data_leaves * self.block_size
        self._shares_aes = (
            AES128(_derive_key(self._base_key, b"shares", 0))
            if shares else None
        )

        # Counter machinery.
        self.counter_scheme: CounterScheme | None = None
        self.counter_cache: CounterCache | None = None
        self._num_counter_blocks = 0
        if config.uses_counters:
            self.counter_scheme = make_counter_scheme(config)
            per = self.counter_scheme.data_blocks_per_counter_block
            self._num_counter_blocks = -(-self.num_data_blocks // per)
            self.counter_cache = CounterCache(
                size_bytes=config.counter_cache_size,
                assoc=config.counter_cache_assoc,
                block_size=self.block_size,
                region_base=self._data_region_bytes,
            )
        counter_region_bytes = self._num_counter_blocks * self.block_size
        self._code_region_base = self._data_region_bytes + counter_region_bytes

        # Authentication machinery.  The integrity strategy picks the
        # geometry and the backend: a logarithmic Merkle tree, or the
        # SecDDR-style flat MAC-of-MACs layer anchored on-chip.
        self.mac_scheme: MACScheme | None = None
        self.merkle: MerkleTree | SecDDRAuthenticator | None = None
        code_region_bytes = 0
        flat = config.resolved_integrity is IntegrityMode.SECDDR
        if config.auth is not AuthMode.NONE:
            if config.auth is AuthMode.GCM:
                self.mac_scheme = GCMMACScheme(
                    _derive_key(self._base_key, b"mac"), config.mac_bits,
                    kernel=self.kernel,
                )
            else:
                self.mac_scheme = SHAMACScheme(
                    _derive_key(self._base_key, b"mac"), config.mac_bits
                )
            num_leaves = self._num_data_leaves + self._num_counter_blocks
            build = build_flat_geometry if flat else build_geometry
            geometry = build(num_leaves, self.block_size, config.mac_bits)
            code_region_bytes = geometry.total_code_blocks * self.block_size

        # ``dram_factory`` lets a harness substitute an instrumented device
        # (e.g. repro.testing's AdversarialDRAM) without post-construction
        # surgery; it receives the same keyword arguments MainMemory takes.
        total = self._code_region_base + code_region_bytes
        make_dram = dram_factory if dram_factory is not None else MainMemory
        self.dram = make_dram(size_bytes=total, block_size=self.block_size,
                              latency_cycles=config.memory_latency)

        if self.mac_scheme is not None:
            backend = SecDDRAuthenticator if flat else MerkleTree
            self.merkle = backend(
                geometry, self.mac_scheme, self.dram,
                code_region_base=self._code_region_base,
                node_cache_bytes=config.node_cache_size,
                node_cache_assoc=config.node_cache_assoc,
            )

        # On-chip data cache (the "L2"; payloads are plaintext).
        self.l2 = Cache(l2_size if l2_size is not None else 64 * 1024,
                        l2_assoc, self.block_size, name="l2")

        blocks_per_page = (
            self.counter_scheme.data_blocks_per_counter_block
            if isinstance(self.counter_scheme, SplitCounterScheme)
            else 64
        )
        self.rsr_file = RSRFile(config.num_rsrs, blocks_per_page)

        # Integrity-violation recovery (off unless the config enables it).
        self.recovery: RecoveryController | None = None
        if config.recovery.enabled:
            self.recovery = RecoveryController(
                config.recovery,
                page_bytes=blocks_per_page * self.block_size,
                tracer=self.tracer,
            )

        self.stats = SecureMemoryStats()
        self._materialized: set[int] = set()          # data block addresses
        self._counter_materialized: set[int] = set()  # counter block indices
        self._counter_deriv: dict[int, int] = {}      # counter-block leaves

        # Unified observability: one registry over every stats object the
        # functional system owns, plus tracer fan-out to the components
        # that carry their own hook.
        self.metrics = MetricsRegistry()
        self.metrics.register("mem", self.stats)
        self.metrics.register("l2", self.l2.stats)
        if self.counter_cache is not None:
            self.metrics.register("counter_cache", self.counter_cache.stats)
        if self.merkle is not None:
            self.metrics.register("merkle", self.merkle.stats)
        if hasattr(self.counter_scheme, "stats"):
            self.metrics.register("scheme", self.counter_scheme.stats)
        if self.recovery is not None:
            self.metrics.register("recovery", self.recovery.stats)
        if self.tracer.enabled:
            if self.counter_cache is not None:
                self.counter_cache.tracer = self.tracer
            if self.merkle is not None:
                self.merkle.tracer = self.tracer
            self.rsr_file.tracer = self.tracer

    # -- address helpers -----------------------------------------------------

    def _check_data_address(self, address: int) -> None:
        if address % self.block_size:
            raise ValueError(f"address {address:#x} not block-aligned")
        if not 0 <= address < self.protected_bytes:
            raise ValueError(
                f"address {address:#x} outside protected region "
                f"[0, {self.protected_bytes:#x})"
            )

    def _data_leaf_index(self, address: int) -> int:
        return address // self.block_size

    def _share_address(self, share: int, address: int) -> int:
        """DRAM address of share ``share`` of logical block ``address``."""
        return share * self.protected_bytes + address

    def _share_leaf_index(self, share: int, address: int) -> int:
        return share * self.num_data_blocks + address // self.block_size

    def _counter_leaf_index(self, counter_block_index: int) -> int:
        return self._num_data_leaves + counter_block_index

    # -- encryption primitives --------------------------------------------------

    def _encrypt(self, address: int, counter: int, plaintext: bytes) -> bytes:
        mode = self.config.encryption
        if mode is EncryptionMode.NONE:
            return bytes(plaintext)
        if mode is EncryptionMode.DIRECT:
            return b"".join(
                self._data_aes.encrypt_block(
                    plaintext[i : i + CHUNK_SIZE]
                )
                for i in range(0, len(plaintext), CHUNK_SIZE)
            )
        return ctr_transform(self._data_aes, address, counter, plaintext)

    def _decrypt(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        mode = self.config.encryption
        if mode is EncryptionMode.NONE:
            return bytes(ciphertext)
        if mode is EncryptionMode.DIRECT:
            return b"".join(
                self._data_aes.decrypt_block(
                    ciphertext[i : i + CHUNK_SIZE]
                )
                for i in range(0, len(ciphertext), CHUNK_SIZE)
            )
        return ctr_transform(self._data_aes, address, counter, ciphertext)

    # -- counter-block residency ---------------------------------------------

    def _ensure_counter_block(self, address: int, for_write: bool) -> None:
        """Bring the counter block covering ``address`` on-chip.

        On a miss the block is fetched from the untrusted counter region,
        authenticated (unless ``authenticate_counters`` is disabled — the
        vulnerable configuration of section 4.3), and decoded into the
        scheme's live state.  Dirty displaced counter blocks are serialized
        back to DRAM with their Merkle leaf updated.
        """
        assert self.counter_scheme is not None and self.counter_cache is not None
        index = self.counter_scheme.counter_block_address(address)
        outcome = self.counter_cache.access(index, write=for_write)
        if outcome.hit:
            return
        self.stats.counter_fetches += 1
        if index in self._counter_materialized:
            mem_address = self.counter_cache.memory_address(index)
            image = self.dram.read_block(mem_address)
            if self.merkle is not None and self.config.authenticate_counters:
                per = self.counter_scheme.data_blocks_per_counter_block
                base = index * per * self.block_size
                image = self._verified_leaf_fetch(
                    self._counter_leaf_index(index), mem_address,
                    self._counter_deriv.get(index, 0), image,
                    label="counter",
                    # A bad counter block compromises every data block it
                    # covers, so the quarantine fence spans all of them.
                    quarantine=[base, base + (per - 1) * self.block_size],
                )
            self.counter_scheme.decode_counter_block(index, image)
        eviction = self.counter_cache.fill(index, dirty=False)
        if eviction is not None and eviction.dirty:
            self._write_back_counter_block(
                self.counter_cache.evicted_index(eviction)
            )

    def _write_back_counter_block(self, index: int) -> None:
        """Serialize a displaced dirty counter block to DRAM + tree."""
        assert self.counter_scheme is not None and self.counter_cache is not None
        self.stats.counter_writebacks += 1
        image = self.counter_scheme.encode_counter_block(index)
        mem_address = self.counter_cache.memory_address(index)
        self.dram.write_block(mem_address, image)
        self._counter_materialized.add(index)
        if self.merkle is not None and self.config.authenticate_counters:
            deriv = self._counter_deriv.get(index, 0) + 1
            self._counter_deriv[index] = deriv
            self.merkle.update_leaf(
                self._counter_leaf_index(index), mem_address, deriv, image
            )

    def _counter_for(self, address: int, for_write: bool) -> int:
        """Resolve a block's current counter, faulting its block on-chip."""
        if self.counter_scheme is None:
            return 0
        self._ensure_counter_block(address, for_write)
        return self.counter_scheme.counter_for_block(address)

    # -- recovery-aware verification ---------------------------------------------

    def _verified_leaf_fetch(self, leaf_index: int, address: int,
                             counter: int, image: bytes, *,
                             label: str = "data",
                             quarantine: list[int] | None = None) -> bytes:
        """Verify a fetched leaf image, routing failures through recovery.

        Without a recovery controller this is the historical behaviour:
        count the violation and re-raise.  With one, the controller
        re-fetches/re-verifies and either returns a good (or, under
        ``degrade``, the unverified) image or raises its policy exception.
        """
        assert self.merkle is not None
        merkle = self.merkle
        try:
            merkle.verify_leaf(leaf_index, address, counter, image)
            return image
        except IntegrityViolation as exc:
            self.stats.integrity_violations += 1
            if (self.recovery is None
                    or isinstance(exc, (RecoveryHalted,
                                        QuarantinedPageError))):
                raise
            return self.recovery.recover(
                address=address, label=label, violation=exc,
                reread=lambda: self.dram.read_block(address),
                verify=lambda img: merkle.verify_leaf(
                    leaf_index, address, counter, img),
                quarantine_addresses=quarantine,
            )

    # -- secret-shared data path (Secure Scattered Memory) ------------------------

    def _fetch_shares(self, address: int, counter: int, *,
                      label: str = "data") -> bytes:
        """Fetch and verify shares 0..k-1, then reconstruct the plaintext.

        Each share is its own Merkle leaf, so tampering with any fetched
        share image is caught before it enters reconstruction.  Shares
        k..n-1 are redundancy: written on every write-back but never read
        on the common path, so corrupting one is a durability loss, not an
        integrity event.
        """
        shares: list[tuple[int, bytes]] = []
        for s in range(self._shares_k):
            mem_address = self._share_address(s, address)
            image = self.dram.read_block(mem_address)
            if self.merkle is not None:
                image = self._verified_leaf_fetch(
                    self._share_leaf_index(s, address), mem_address, counter,
                    image, label=label,
                    # Fence the logical page, not the share region slice.
                    quarantine=[address, address],
                )
            shares.append((s, image))
        return reconstruct_block(shares)

    def _write_back_shares(self, address: int, counter: int,
                           plaintext: bytes) -> None:
        """Split a block into n shares and store/MAC every one of them."""
        assert self._shares_aes is not None
        coefficients = coefficient_blocks(
            self._shares_aes, address, counter, self.block_size,
            self._shares_k,
        )
        images = split_block(bytes(plaintext), coefficients, self._shares_n)
        for s, image in enumerate(images):
            mem_address = self._share_address(s, address)
            self.dram.write_block(mem_address, image)
            if self.merkle is not None:
                self.merkle.update_leaf(
                    self._share_leaf_index(s, address), mem_address, counter,
                    image,
                )

    # -- fetch / write-back -------------------------------------------------------

    def _fetch_plaintext_uncached(self, address: int, counter: int, *,
                                  label: str = "data") -> bytes:
        """Fetch, verify, and decode one materialized block, bypassing the L2."""
        if self.config.encryption is EncryptionMode.SHARES:
            return self._fetch_shares(address, counter, label=label)
        ciphertext = self.dram.read_block(address)
        if self.merkle is not None:
            ciphertext = self._verified_leaf_fetch(
                self._data_leaf_index(address), address, counter, ciphertext,
                label=label,
            )
        return self._decrypt(address, counter, ciphertext)

    def _fetch_block(self, address: int) -> bytearray:
        """L2 miss path: fetch, decrypt, and authenticate one data block."""
        self.stats.reads += 1
        if address not in self._materialized:
            return bytearray(self.block_size)
        counter = self._counter_for(address, for_write=False)
        return bytearray(self._fetch_plaintext_uncached(address, counter))

    def _write_back(self, address: int, plaintext: bytes) -> None:
        """Dirty-eviction path: encrypt, store, and re-MAC one data block."""
        self.stats.writes += 1
        counter = 0
        if self.counter_scheme is not None:
            self._ensure_counter_block(address, for_write=True)
            result = self.counter_scheme.increment(address)
            # The increment mutates the resident counter block regardless of
            # whether the access above hit or missed; mark the line dirty so
            # eviction serializes the new value back to DRAM.
            self.counter_cache.mark_dirty(
                self.counter_scheme.counter_block_address(address)
            )
            counter = result.counter
            if result.action is OverflowAction.PAGE_REENCRYPTION:
                self._page_reencrypt(result.page_address, address)
            elif result.action is OverflowAction.FULL_REENCRYPTION:
                self._full_reencrypt(address)
                counter = 1
        self._materialized.add(address)
        if self.config.encryption is EncryptionMode.SHARES:
            self._write_back_shares(address, counter, plaintext)
            return
        ciphertext = self._encrypt(address, counter, plaintext)
        self.dram.write_block(address, ciphertext)
        if self.merkle is not None:
            self.merkle.update_leaf(
                self._data_leaf_index(address), address, counter, ciphertext
            )

    # -- batched fetch ---------------------------------------------------------

    def _counter_block_index(self, address: int) -> int:
        if self.counter_scheme is None:
            return 0
        return self.counter_scheme.counter_block_address(address)

    def _fetch_blocks_bulk(self, addresses: list[int]) -> dict[int, bytearray]:
        """Miss path for many distinct blocks: fetch, verify, decrypt in bulk.

        ``addresses`` must be distinct and sorted so that blocks sharing a
        counter block are adjacent — each counter block is then faulted
        on-chip once per batch.  Merkle verification runs through
        :meth:`~repro.auth.merkle.MerkleTree.verify_leaves` (shared-ancestor
        dedup) and all counter-mode pads are generated with a single AES
        dispatch.  Returns plaintext per address.
        """
        if self.config.encryption is EncryptionMode.SHARES:
            # Scattered blocks fan out to k share fetches with per-share
            # verification; the scalar path already expresses that exactly.
            return {address: self._fetch_block(address)
                    for address in addresses}
        out: dict[int, bytearray] = {}
        fetched: list[tuple[int, int, bytes]] = []  # (addr, counter, ct)
        for address in addresses:
            self.stats.reads += 1
            if address not in self._materialized:
                out[address] = bytearray(self.block_size)
                continue
            counter = self._counter_for(address, for_write=False)
            fetched.append((address, counter, self.dram.read_block(address)))
        if self.merkle is not None and fetched:
            try:
                self.merkle.verify_leaves([
                    (self._data_leaf_index(address), address, counter,
                     ciphertext)
                    for address, counter, ciphertext in fetched
                ])
            except IntegrityViolation:
                if self.recovery is None:
                    self.stats.integrity_violations += 1
                    raise
                # Scalar fallback: re-verify each block individually so the
                # failing one(s) get the full retry/classify/policy
                # treatment while the rest stay cheap re-checks.
                fetched = [
                    (address, counter, self._verified_leaf_fetch(
                        self._data_leaf_index(address), address, counter,
                        ciphertext))
                    for address, counter, ciphertext in fetched
                ]
        mode = self.config.encryption
        if mode is EncryptionMode.COUNTER:
            plaintexts = bulk_ctr_transform(self._data_aes, fetched,
                                            kernel=self.kernel)
            for (address, _, _), plaintext in zip(fetched, plaintexts):
                out[address] = bytearray(plaintext)
        elif mode is EncryptionMode.DIRECT:
            chunks = [
                ciphertext[i:i + CHUNK_SIZE]
                for _, _, ciphertext in fetched
                for i in range(0, self.block_size, CHUNK_SIZE)
            ]
            plain_chunks = decrypt_blocks_kernel(self._data_aes, chunks,
                                                 self.kernel)
            per_block = self.block_size // CHUNK_SIZE
            for n, (address, _, _) in enumerate(fetched):
                out[address] = bytearray(
                    b"".join(plain_chunks[n * per_block:(n + 1) * per_block])
                )
        else:
            for address, _, ciphertext in fetched:
                out[address] = bytearray(ciphertext)
        return out

    # -- page re-encryption (split counters + RSR) -----------------------------

    def _page_reencrypt(self, page_index: int, triggering_address: int) -> None:
        """Re-encrypt one encryption page after a minor-counter overflow.

        Follows section 4.2: the RSR captures the old major counter (the
        scheme has already advanced it), each cached block is lazily
        dirty-marked without a fetch, each memory-resident block is fetched,
        decrypted under the old major and its old minor, and immediately
        written back under the new major.  Functional time is synchronous,
        so the RSR is driven start-to-finish here.
        """
        assert isinstance(self.counter_scheme, SplitCounterScheme)
        scheme = self.counter_scheme
        stats = self.stats.reencryption
        stats.page_reencryptions += 1
        if self.rsr_file.find(page_index) is not None:
            # Section 4.2's first stall condition; cannot occur with
            # synchronous completion but guarded for safety.
            stats.rsr_stalls += 1
            raise RuntimeError("overflow on a page already re-encrypting")
        rsr = self.rsr_file.find_free()
        if rsr is None:
            stats.rsr_stalls += 1
            raise RuntimeError("no free RSR")
        old_major = scheme.major_counter(page_index) - 1
        rsr.allocate(page_index, old_major)
        stats.max_concurrent_rsrs = max(stats.max_concurrent_rsrs,
                                        self.rsr_file.active_count)
        for slot, block_address in enumerate(scheme.blocks_of_page(page_index)):
            if block_address == triggering_address:
                # The overflowing write-back re-encrypts this block itself;
                # its minor was reset by the scheme's increment.
                stats.blocks_found_onchip += 1
                rsr.mark_done(slot)
                continue
            if (block_address < self.protected_bytes
                    and self.l2.contains(block_address)):
                # Lazy path: on-chip copy is plaintext; mark it dirty so the
                # natural write-back re-encrypts under the new major.
                scheme.reset_minor(block_address)
                self.l2.mark_dirty(block_address)
                stats.blocks_found_onchip += 1
                stats.blocks_reencrypted += 1
                rsr.mark_done(slot)
                continue
            if block_address not in self._materialized:
                scheme.reset_minor(block_address)
                stats.blocks_untouched += 1
                rsr.mark_done(slot)
                continue
            # Fetch, decrypt under (old major, old minor), re-encrypt under
            # the new major; not cached, immediately written back.
            old_counter = scheme.counter_with_major(block_address, old_major)
            plaintext = self._fetch_plaintext_uncached(
                block_address, old_counter, label="reencrypt"
            )
            scheme.reset_minor(block_address)
            stats.blocks_fetched += 1
            stats.blocks_reencrypted += 1
            self._write_back(block_address, plaintext)
            rsr.mark_done(slot)

    # -- full-memory re-encryption (monolithic / global overflow) ---------------

    def _full_reencrypt(self, triggering_address: int) -> None:
        """Key change + entire-memory re-encryption (the costly freeze)."""
        scheme = self.counter_scheme
        assert isinstance(scheme, (MonolithicCounterScheme,
                                   GlobalCounterScheme))
        self.stats.reencryption.full_reencryptions += 1
        # Decrypt every materialized block under the old key and counters.
        plaintexts: dict[int, bytes] = {}
        for address in sorted(self._materialized):
            counter = scheme.counter_for_block(address)
            plaintexts[address] = self._decrypt(
                address, counter, self.dram.read_block(address)
            )
        # Key change: everything re-encrypts under counter 0, epoch + 1.
        self._key_epoch += 1
        self._data_aes = AES128(
            _derive_key(self._base_key, b"data", self._key_epoch)
        )
        scheme.reset_all_counters()
        for address, plaintext in plaintexts.items():
            ciphertext = self._encrypt(address, 0, plaintext)
            self.dram.write_block(address, ciphertext)
            if self.merkle is not None:
                self.merkle.update_leaf(
                    self._data_leaf_index(address), address, 0, ciphertext
                )
        # The triggering block's write-back proceeds with counter 1.
        scheme.set_counter(triggering_address, 1)
        self.stats.reencryption.blocks_reencrypted += len(plaintexts)

    # -- public API --------------------------------------------------------------

    def read_block(self, address: int) -> bytes:
        """Read one block through the L2 (plaintext view)."""
        self._check_data_address(address)
        if self.recovery is not None:
            self.recovery.check_fence(address)
        if self.l2.access(address):
            return bytes(self.l2.lookup(address).payload)
        plaintext = self._fetch_block(address)
        eviction = self.l2.fill(address, payload=plaintext)
        if eviction is not None and eviction.dirty:
            self._write_back(eviction.address, bytes(eviction.payload))
        return bytes(plaintext)

    def write_block(self, address: int, data: bytes) -> None:
        """Write one block through the L2 (write-allocate, write-back)."""
        self._check_data_address(address)
        if len(data) != self.block_size:
            raise ValueError(f"data must be {self.block_size} bytes")
        if self.recovery is not None:
            self.recovery.check_fence(address)
        if self.l2.access(address, write=True):
            self.l2.lookup(address).payload[:] = data
            return
        self._fetch_block(address)  # write-allocate (fills nothing yet)
        eviction = self.l2.fill(address, dirty=True, payload=bytearray(data))
        if eviction is not None and eviction.dirty:
            self._write_back(eviction.address, bytes(eviction.payload))

    def read_blocks(self, addresses: list[int]) -> list[bytes]:
        """Read many blocks through the L2, batching the miss work.

        Returns plaintexts in input order; each entry is byte-identical to
        what the equivalent ``read_block`` loop would have returned.  Misses
        are deduplicated and serviced sorted by counter block, so each
        counter block faults on-chip at most once and all pads come from
        one AES dispatch; Merkle chains are walked once per shared parent.
        Cache/eviction order may differ from the scalar loop (hit/miss
        statistics can shift), but every eviction runs the ordinary
        write-back path, so DRAM always holds a consistent image.  On an
        :class:`IntegrityViolation` the batch aborts without returning any
        values.
        """
        for address in addresses:
            self._check_data_address(address)
            if self.recovery is not None:
                self.recovery.check_fence(address)
        out: list[bytes | None] = [None] * len(addresses)
        misses: dict[int, list[int]] = {}
        for slot, address in enumerate(addresses):
            if address in misses:
                misses[address].append(slot)
            elif self.l2.access(address):
                out[slot] = bytes(self.l2.lookup(address).payload)
            else:
                misses[address] = [slot]
        if misses:
            pending = sorted(
                misses, key=lambda a: (self._counter_block_index(a), a)
            )
            plaintexts = self._fetch_blocks_bulk(pending)
            for address in pending:
                plaintext = plaintexts[address]
                data = bytes(plaintext)
                for slot in misses[address]:
                    out[slot] = data
                eviction = self.l2.fill(address, payload=plaintext)
                if eviction is not None and eviction.dirty:
                    self._write_back(eviction.address, bytes(eviction.payload))
        return out  # type: ignore[return-value]

    def write_blocks(self, pairs: list[tuple[int, bytes]]) -> None:
        """Write many blocks through the L2, batching the allocate work.

        ``pairs`` holds ``(address, data)`` in program order; duplicate
        addresses collapse last-write-wins, exactly as the equivalent
        ``write_block`` loop would leave them.  Write-allocate fetches for
        missing blocks are batched like :meth:`read_blocks`.
        """
        for address, data in pairs:
            self._check_data_address(address)
            if len(data) != self.block_size:
                raise ValueError(f"data must be {self.block_size} bytes")
            if self.recovery is not None:
                self.recovery.check_fence(address)
        staged: dict[int, bytes] = {}   # miss staging, last write wins
        for address, data in pairs:
            if address in staged:
                staged[address] = data
            elif self.l2.access(address, write=True):
                self.l2.lookup(address).payload[:] = data
            else:
                staged[address] = data
        if staged:
            pending = sorted(
                staged, key=lambda a: (self._counter_block_index(a), a)
            )
            self._fetch_blocks_bulk(pending)  # write-allocate verification
            for address in staged:  # preserve first-seen fill order
                eviction = self.l2.fill(address, dirty=True,
                                        payload=bytearray(staged[address]))
                if eviction is not None and eviction.dirty:
                    self._write_back(eviction.address, bytes(eviction.payload))

    def read(self, address: int, size: int) -> bytes:
        """Byte-granular read spanning blocks."""
        out = bytearray()
        while size > 0:
            base = address & ~(self.block_size - 1)
            offset = address - base
            take = min(size, self.block_size - offset)
            out.extend(self.read_block(base)[offset : offset + take])
            address += take
            size -= take
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Byte-granular write spanning blocks (read-modify-write)."""
        position = 0
        while position < len(data):
            base = (address + position) & ~(self.block_size - 1)
            offset = (address + position) - base
            take = min(len(data) - position, self.block_size - offset)
            block = bytearray(self.read_block(base))
            block[offset : offset + take] = data[position : position + take]
            self.write_block(base, bytes(block))
            position += take

    def flush(self) -> None:
        """Write all dirty on-chip state back to DRAM.

        After a flush the DRAM image is self-contained: a fresh system with
        the same keys (see :meth:`clone_cold`) can verify and decrypt it.
        """
        # Write-backs can dirty more lines (lazy page re-encryption marks
        # cached blocks dirty; data write-backs dirty counter blocks), so
        # sweep until everything is clean.
        while True:
            dirty_data = list(self.l2.dirty_blocks())
            for address, line in dirty_data:
                line.dirty = False
                self._write_back(address, bytes(line.payload))
            dirty_counters = (
                list(self.counter_cache.cache.dirty_blocks())
                if self.counter_cache is not None else []
            )
            for block_addr, line in dirty_counters:
                line.dirty = False
                self._write_back_counter_block(block_addr // self.block_size)
            if not dirty_data and not dirty_counters:
                break
        if self.merkle is not None:
            self.merkle.flush()

    @property
    def integrity_violations(self) -> int:
        total = self.stats.integrity_violations
        if self.merkle is not None:
            total = max(total, self.merkle.stats.violations_detected)
        return total

    # -- checkpoint support ------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable full machine state (see repro.resilience.checkpoint).

        Key material is *not* secret to the checkpoint: the base key is
        part of the construction parameters, so only the epoch needs
        recording — the data key re-derives on load.
        """
        from repro.obs.metrics import fields_state
        state: dict = {
            "key_epoch": self._key_epoch,
            "materialized": set(self._materialized),
            "counter_materialized": set(self._counter_materialized),
            "counter_deriv": dict(self._counter_deriv),
            "l2": self.l2.state_dict(),
            "dram": self.dram.state_dict(),
            "rsrs": self.rsr_file.state_dict(),
            "stats": fields_state(self.stats),
        }
        if self.counter_cache is not None:
            state["counter_cache"] = self.counter_cache.state_dict()
        if self.counter_scheme is not None:
            state["scheme"] = self.counter_scheme.state_dict()
        if self.merkle is not None:
            state["merkle"] = self.merkle.state_dict()
        if self.recovery is not None:
            state["recovery"] = self.recovery.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        from repro.obs.metrics import load_fields_state
        self._key_epoch = state["key_epoch"]
        self._data_aes = AES128(
            _derive_key(self._base_key, b"data", self._key_epoch)
        )
        self._materialized = set(state["materialized"])
        self._counter_materialized = set(state["counter_materialized"])
        self._counter_deriv = dict(state["counter_deriv"])
        self.l2.load_state(state["l2"])
        self.dram.load_state(state["dram"])
        self.rsr_file.load_state(state["rsrs"])
        load_fields_state(self.stats, state["stats"])
        if self.counter_cache is not None:
            self.counter_cache.load_state(state["counter_cache"])
        if self.counter_scheme is not None:
            self.counter_scheme.load_state(state["scheme"])
        if self.merkle is not None:
            self.merkle.load_state(state["merkle"])
        if self.recovery is not None:
            self.recovery.load_state(state["recovery"])
