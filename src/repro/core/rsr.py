"""Re-encryption status registers (RSRs) — section 4.2's hardware support.

An RSR tracks one in-progress page re-encryption: a valid bit, the page
tag, the *old* major counter (needed to decrypt blocks not yet
re-encrypted), and one done bit per block of the page.  With 64 blocks per
page and eight RSRs the total state is under 150 bytes, as the paper notes.

Two users:

* the functional :class:`repro.core.secure_memory.SecureMemorySystem`
  drives an RSR through a complete page re-encryption (synchronously, since
  functional time does not advance);
* the timing layer additionally tracks *when* each RSR frees up, to model
  the two stall conditions of section 4.2 — a second overflow on a page
  still being re-encrypted, and allocation when every RSR is busy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import Tracer


@dataclass
class RSR:
    """One re-encryption status register."""

    blocks_per_page: int
    valid: bool = False
    page_index: int = -1
    old_major: int = 0
    done: list[bool] = field(default_factory=list)
    #: timing layer only: cycle at which this re-encryption completes
    busy_until: float = 0.0
    #: optional observability hook (shared across the file's registers)
    tracer: Tracer | None = None

    def allocate(self, page_index: int, old_major: int,
                 busy_until: float = 0.0) -> None:
        """Claim this RSR for a page (the paper's allocation sequence)."""
        if self.valid:
            raise RuntimeError("allocating an RSR that is still valid")
        self.valid = True
        self.page_index = page_index
        self.old_major = old_major
        self.done = [False] * self.blocks_per_page
        self.busy_until = busy_until
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("rsr", "allocate", busy_until,
                           page=page_index, old_major=old_major)

    def mark_done(self, slot: int) -> None:
        self.done[slot] = True
        if all(self.done):
            self.free()

    def free(self) -> None:
        self.valid = False
        self.page_index = -1
        self.done = []

    @property
    def remaining(self) -> int:
        return sum(1 for d in self.done if not d) if self.valid else 0


class RSRFile:
    """The set of RSRs plus allocation / match logic."""

    def __init__(self, num_rsrs: int = 8, blocks_per_page: int = 64):
        if num_rsrs < 1:
            raise ValueError("need at least one RSR")
        self.rsrs = [RSR(blocks_per_page) for _ in range(num_rsrs)]
        self.blocks_per_page = blocks_per_page

    @property
    def tracer(self) -> Tracer | None:
        return self.rsrs[0].tracer

    @tracer.setter
    def tracer(self, tracer: Tracer | None) -> None:
        for rsr in self.rsrs:
            rsr.tracer = tracer

    def find(self, page_index: int) -> RSR | None:
        """The valid RSR handling a page, if any."""
        for rsr in self.rsrs:
            if rsr.valid and rsr.page_index == page_index:
                return rsr
        return None

    def find_free(self, now: float = 0.0) -> RSR | None:
        """A free RSR (invalid, or — timing — already past busy_until)."""
        for rsr in self.rsrs:
            if not rsr.valid:
                return rsr
        return None

    def earliest_free_time(self) -> float:
        """Timing helper: when the soonest-finishing RSR frees up."""
        return min(rsr.busy_until for rsr in self.rsrs)

    def expire(self, now: float) -> None:
        """Timing helper: free RSRs whose re-encryption has completed."""
        for rsr in self.rsrs:
            if rsr.valid and rsr.busy_until <= now:
                rsr.free()

    @property
    def active_count(self) -> int:
        return sum(1 for rsr in self.rsrs if rsr.valid)

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "rsrs": [
                {
                    "valid": rsr.valid,
                    "page_index": rsr.page_index,
                    "old_major": rsr.old_major,
                    "done": list(rsr.done),
                    "busy_until": rsr.busy_until,
                }
                for rsr in self.rsrs
            ],
        }

    def load_state(self, state: dict) -> None:
        for rsr, entry in zip(self.rsrs, state["rsrs"]):
            rsr.valid = entry["valid"]
            rsr.page_index = entry["page_index"]
            rsr.old_major = entry["old_major"]
            rsr.done = list(entry["done"])
            rsr.busy_until = entry["busy_until"]
