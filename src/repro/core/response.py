"""Responses to detected authentication failures (section 3).

The paper argues that small MACs are acceptable in hardware-attack
settings because failed authentications are *observable*: unlike a network
receiver that must silently drop forged packets forever, the processor
knows it is under attack after a few failures and can respond.  Two
deployment examples are given:

* **corporate** — raise an alarm so a technician removes the snooper;
* **game console** — "produce exponentially increasing stall cycles after
  each authentication failure, to make extraction of copyrighted data a
  very lengthy process."

:class:`ViolationResponder` implements both, plus a halt-on-first-failure
mode, and quantifies the security argument: the expected time for an
attacker to land one lucky forgery against an n-bit MAC under an
exponential-stall policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ResponseMode(enum.Enum):
    """What the processor does after a failed authentication."""

    REPORT = "report"            # count + alarm, keep running (corporate)
    EXPONENTIAL_STALL = "stall"  # 2^k growing stalls (game console)
    HALT = "halt"                # stop at the first failure


class SystemHalted(Exception):
    """Raised by the HALT response mode."""


@dataclass
class ViolationResponder:
    """Tracks authentication failures and dictates the penalty.

    ``base_stall_cycles`` is the penalty for the first failure under
    EXPONENTIAL_STALL; failure k costs ``base * 2^(k-1)`` cycles, capped
    at ``max_stall_cycles`` to keep arithmetic finite.
    """

    mode: ResponseMode = ResponseMode.EXPONENTIAL_STALL
    base_stall_cycles: float = 10_000.0
    max_stall_cycles: float = 1e18
    failures: int = 0
    total_stall_cycles: float = 0.0
    history: list[float] = field(default_factory=list)

    def on_violation(self) -> float:
        """Record one failed authentication; returns the stall penalty."""
        self.failures += 1
        if self.mode is ResponseMode.HALT:
            raise SystemHalted(
                f"authentication failure #{self.failures}: system halted"
            )
        if self.mode is ResponseMode.REPORT:
            self.history.append(0.0)
            return 0.0
        stall = min(self.base_stall_cycles * 2 ** (self.failures - 1),
                    self.max_stall_cycles)
        self.total_stall_cycles += stall
        self.history.append(stall)
        return stall

    def reset(self) -> None:
        self.failures = 0
        self.total_stall_cycles = 0.0
        self.history = []


def expected_forgery_stall_cycles(mac_bits: int,
                                  base_stall_cycles: float = 10_000.0) -> float:
    """Cycles of stalls an attacker pays, in expectation, to land one
    lucky forgery against an n-bit MAC under exponential stalls.

    Each guess succeeds with p = 2^-n; the attacker needs ~2^n guesses,
    and the k-th failed guess costs base * 2^(k-1) cycles, so the total
    stall before the expected success is ~base * (2^(2^n) ...) —
    astronomically large even for 32-bit MACs.  We return the stall cost
    of just the first ``min(2^n, 60)`` failures (already ~10^21 cycles for
    60 failures), which is the quantity that matters: the attack becomes
    infeasible long before the expected number of guesses is reached.
    """
    guesses = min(1 << mac_bits, 60)
    return base_stall_cycles * ((1 << guesses) - 1)
