"""Observability layer: structured tracing, unified metrics, attribution.

The paper's claims are accounting claims — normalized IPC, timely-pad
rates, the 0.3% re-encryption work ratio, the 5717-cycle mean page
re-encryption — so this package gives the whole stack one way to see
*where* a miss's cycles went:

* :mod:`repro.obs.tracer` — a :class:`Tracer` protocol with a near-zero-
  cost no-op default (:data:`NULL_TRACER`) and a :class:`RecordingTracer`
  that captures typed span/instant events (bus transfers, engine
  occupancy windows, counter hit/half-miss/miss, pad timeliness, Merkle
  level fetch+verify, RSR re-encryption) stamped in simulated cycles.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` unifying the ad-hoc
  stats dataclasses behind named counters/gauges/histograms with a single
  ``snapshot()``/``reset()``; ``reset_fields`` derives reset behaviour
  from ``dataclasses.fields()`` so newly added counters can never drift.
* :mod:`repro.obs.attribution` — per-miss critical-path decomposition of
  ``auth_done - issue`` into bus/DRAM/AES/GHASH/SHA/tree-walk/stall
  components that provably sum to the observed latency.
* :mod:`repro.obs.export` — Chrome-trace (Perfetto-loadable) JSON and
  flat-CSV exporters, wired into ``python -m repro profile`` and
  ``repro.api.run(trace=...)``.
"""

from repro.obs.attribution import (
    ATTRIBUTION_COMPONENTS,
    AttributionError,
    AttributionReport,
    MissRecord,
    PathTime,
    build_report,
)
from repro.obs.export import (
    to_chrome_trace,
    to_csv,
    write_chrome_trace,
    write_csv,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    reset_fields,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, RecordingTracer, Tracer, TraceEvent

__all__ = [
    "ATTRIBUTION_COMPONENTS",
    "AttributionError",
    "AttributionReport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MissRecord",
    "NULL_TRACER",
    "NullTracer",
    "PathTime",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "build_report",
    "reset_fields",
    "to_chrome_trace",
    "to_csv",
    "write_chrome_trace",
    "write_csv",
]
