"""Per-miss cycle attribution along the timing model's critical path.

Every L2 miss resolves through a DAG of dependent steps — counter fetch,
keystream pads, the data transfer, the leaf MAC, missing Merkle levels —
joined by ``max()``.  :class:`PathTime` threads through that computation:
it carries a timestamp plus a per-component breakdown of how the
timestamp was reached from the miss's issue cycle, and a ``max``-join
adopts the breakdown of whichever operand is later.  The decomposition is
therefore exact *by construction*: for every miss,

    ``sum(parts.values()) == auth_done - issue``

up to float rounding.  :class:`MissRecord.check` enforces the identity
(the acceptance bar is 1% of the observed latency) and
:class:`AttributionReport` aggregates records into the component totals
``python -m repro profile`` prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

#: Component buckets a miss's latency decomposes into.
#:
#: * ``bus_queue`` — waiting behind earlier bus transactions
#: * ``bus``       — the demand transfer's own beats on the wire
#: * ``dram``      — uncontended DRAM access time
#: * ``aes``       — keystream/authentication-pad generation on the AES unit
#: * ``ghash``     — GHASH chunk chain + final tag XOR (GCM auth)
#: * ``sha``       — SHA-1 MAC latency (baseline auth schemes)
#: * ``tree``      — fetch+verify of missing Merkle levels above the leaf
#: * ``counter_wait`` — waiting on an in-flight counter fill (half-miss)
#: * ``other``     — everything else on the path (the decrypt XOR cycle)
ATTRIBUTION_COMPONENTS = (
    "bus_queue",
    "bus",
    "dram",
    "aes",
    "ghash",
    "sha",
    "tree",
    "counter_wait",
    "other",
)


class AttributionError(AssertionError):
    """The per-component breakdown failed to sum to the observed latency."""


class PathTime:
    """A timestamp plus the per-component account of how it was reached."""

    __slots__ = ("t", "parts")

    def __init__(self, t: float, parts: dict[str, float] | None = None):
        self.t = t
        self.parts: dict[str, float] = {} if parts is None else parts

    def advance(self, component: str, until: float) -> float:
        """Move the clock to ``until``, charging the gap to ``component``.

        A target at or before the current time is a no-op — dependencies
        that were already satisfied contribute nothing to the path.
        """
        if until > self.t:
            self.parts[component] = (
                self.parts.get(component, 0.0) + (until - self.t)
            )
            self.t = until
        return self.t

    def fork(self) -> "PathTime":
        """Independent copy for a branch of the dependence DAG."""
        return PathTime(self.t, dict(self.parts))

    def adopt(self, other: "PathTime") -> None:
        """Become ``other`` in place (callers hold references to us)."""
        self.t = other.t
        self.parts = other.parts

    @staticmethod
    def merge(*paths: "PathTime") -> "PathTime":
        """``max()``-join: the latest path *is* the critical path."""
        return max(paths, key=lambda p: p.t)

    def total(self) -> float:
        return sum(self.parts.values())

    def __repr__(self) -> str:
        return f"PathTime(t={self.t}, parts={self.parts})"


@dataclass
class MissRecord:
    """Attribution of one L2 miss: where ``auth_done - issue`` went."""

    address: int
    issue: float
    data_ready: float
    auth_done: float
    parts: dict[str, float] = field(default_factory=dict)
    kind: str = "read"

    @property
    def latency(self) -> float:
        return self.auth_done - self.issue

    @property
    def residual(self) -> float:
        """Unattributed cycles; ~0 by construction."""
        return self.latency - sum(self.parts.values())

    @property
    def residual_fraction(self) -> float:
        if self.latency <= 0:
            return 0.0
        return abs(self.residual) / self.latency

    def check(self, tolerance: float = 0.01) -> None:
        """Assert the attribution identity within ``tolerance`` (relative)."""
        bound = max(1e-6, tolerance * max(self.latency, 1.0))
        if abs(self.residual) > bound:
            raise AttributionError(
                f"miss @{self.address:#x}: components sum to "
                f"{sum(self.parts.values()):.3f} but observed latency is "
                f"{self.latency:.3f} cycles (residual {self.residual:+.3f})"
            )
        unknown = set(self.parts) - set(ATTRIBUTION_COMPONENTS)
        if unknown:
            raise AttributionError(
                f"miss @{self.address:#x}: unknown components {sorted(unknown)}"
            )


@dataclass
class AttributionReport:
    """Aggregate of many :class:`MissRecord`\\ s — the profile headline."""

    misses: int = 0
    total_latency: float = 0.0
    components: dict[str, float] = field(default_factory=dict)
    max_residual_fraction: float = 0.0
    mean_latency: float = 0.0
    max_latency: float = 0.0

    def fractions(self) -> dict[str, float]:
        """Each component's share of all attributed miss cycles."""
        if self.total_latency <= 0:
            return {k: 0.0 for k in self.components}
        return {k: v / self.total_latency
                for k, v in self.components.items()}

    def to_dict(self) -> dict:
        return {
            "misses": self.misses,
            "total_latency_cycles": self.total_latency,
            "mean_latency_cycles": self.mean_latency,
            "max_latency_cycles": self.max_latency,
            "components_cycles": dict(self.components),
            "components_fraction": self.fractions(),
            "max_residual_fraction": self.max_residual_fraction,
        }


def build_report(records: Iterable[MissRecord],
                 tolerance: float | None = 0.01) -> AttributionReport:
    """Aggregate miss records; ``tolerance`` != None re-checks each one."""
    report = AttributionReport(
        components={name: 0.0 for name in ATTRIBUTION_COMPONENTS}
    )
    for record in records:
        if tolerance is not None:
            record.check(tolerance)
        report.misses += 1
        latency = record.latency
        report.total_latency += latency
        report.max_latency = max(report.max_latency, latency)
        report.max_residual_fraction = max(
            report.max_residual_fraction, record.residual_fraction
        )
        for component, cycles in record.parts.items():
            report.components[component] = (
                report.components.get(component, 0.0) + cycles
            )
    if report.misses:
        report.mean_latency = report.total_latency / report.misses
    if not math.isfinite(report.total_latency):  # defensive: corrupt input
        raise AttributionError("non-finite total latency in report")
    return report
