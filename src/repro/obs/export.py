"""Trace exporters: Chrome-trace (Perfetto) JSON and flat CSV.

The Chrome trace event format is the JSON-object flavour —
``{"traceEvents": [...]}`` — with complete (``ph: "X"``) events for spans
and ``ph: "i"`` for instants, which both ``chrome://tracing`` and
Perfetto's trace processor load natively.  Simulated cycles map 1:1 onto
trace microseconds (``displayTimeUnit`` pins the UI to that scale).

Tracks: each event category becomes one named "thread" of a single
process, so bus occupancy, AES/SHA engine windows, Merkle walks, RSR
re-encryptions, and the per-miss spans stack into aligned swimlanes.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.obs.tracer import RecordingTracer, TraceEvent

#: Stable swimlane order for the known categories; unknown categories are
#: appended after these in first-seen order.
_TRACK_ORDER = (
    "miss",
    "bus",
    "engine",
    "counter",
    "pad",
    "tree",
    "rsr",
    "mem",
    "merkle",
)


def _track_ids(events: Iterable[TraceEvent]) -> dict[str, int]:
    tracks: dict[str, int] = {}
    for cat in _TRACK_ORDER:
        tracks[cat] = len(tracks) + 1
    for event in events:
        if event.cat not in tracks:
            tracks[event.cat] = len(tracks) + 1
    return tracks


def to_chrome_trace(tracer: RecordingTracer, pid: int = 1) -> dict:
    """Build the Chrome-trace JSON object for a recorded run."""
    tracks = _track_ids(tracer.events)
    trace_events: list[dict] = [
        {
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "repro timing model (1 cycle = 1 us)"},
        },
    ]
    for cat, tid in tracks.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": cat},
        })
    for event in tracer.events:
        tid = tracks[event.cat]
        entry: dict = {
            "name": event.name,
            "cat": event.cat,
            "pid": pid,
            "tid": tid,
            "ts": event.begin,
        }
        if event.is_span:
            entry["ph"] = "X"
            entry["dur"] = event.duration
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        if event.args:
            entry["args"] = dict(event.args)
        trace_events.append(entry)
    for record in tracer.misses:
        trace_events.append({
            "name": f"{record.kind}@{record.address:#x}",
            "cat": "attribution",
            "pid": pid,
            "tid": tracks.get("miss", 1),
            "ph": "X",
            "ts": record.issue,
            "dur": record.latency,
            "args": {
                "data_ready": record.data_ready,
                "auth_done": record.auth_done,
                **{k: round(v, 3) for k, v in record.parts.items()},
            },
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: RecordingTracer, path: str) -> str:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer), handle)
    return path


_CSV_FIELDS = ("type", "cat", "name", "begin", "end", "duration", "args")


def to_csv(tracer: RecordingTracer) -> str:
    """Flat CSV of every event (one row each; args as a JSON cell)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CSV_FIELDS)
    for event in tracer.events:
        writer.writerow([
            "span" if event.is_span else "instant",
            event.cat,
            event.name,
            event.begin,
            event.end if event.end is not None else "",
            event.duration if event.is_span else "",
            json.dumps(event.args, sort_keys=True) if event.args else "",
        ])
    for record in tracer.misses:
        writer.writerow([
            "miss",
            "attribution",
            f"{record.kind}@{record.address:#x}",
            record.issue,
            record.auth_done,
            record.latency,
            json.dumps(record.parts, sort_keys=True),
        ])
    return buffer.getvalue()


def write_csv(tracer: RecordingTracer, path: str) -> str:
    """Serialize :func:`to_csv` to ``path``; returns the path."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(tracer))
    return path
