"""Unified metrics: named counters/gauges/histograms over the stats objects.

The repo accumulated one hand-maintained stats dataclass per subsystem
(:class:`~repro.core.stats.SecureMemoryStats`, cache stats, bus stats,
engine stats, Merkle stats), each with a hand-listed ``reset()`` — a
latent bug class where a newly added field silently survives
``Experiment`` reuse across runs.  Two fixes live here:

* :func:`reset_fields` derives reset behaviour from
  ``dataclasses.fields()``: every field returns to its declared
  default/default_factory value, nested stats dataclasses reset in place
  (so held references stay valid).  The per-class ``reset()`` methods now
  delegate here, so a new counter can never be forgotten.
* :class:`MetricsRegistry` registers those dataclasses (plus ad-hoc
  counters/gauges/histograms) under dotted names with one
  ``snapshot()``/``reset()``.  Registered dataclass *properties*
  (``hit_rate``, ``timely_rate``, ...) appear in snapshots as derived
  gauges.
"""

from __future__ import annotations

import copy
import dataclasses
from bisect import bisect_left
from typing import Any, Callable, Iterator


def _frozen(value: Any) -> Any:
    """A snapshot-safe copy of one metric value.

    Scalars (and strings) are immutable and pass through; container values
    — dict/list fields on a registered stats dataclass — are deep-copied
    so a snapshot taken by one consumer (e.g. a concurrent metrics scrape
    from the serve layer) can never alias, or later observe, in-flight
    mutation of the live registry.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    return copy.deepcopy(value)


def reset_fields(obj: Any) -> None:
    """Reset a stats dataclass to its declared per-field defaults.

    Nested dataclass instances are reset recursively *in place* — callers
    commonly hold references to them (``reenc = stats.reencryption``) that
    must stay live across a reset.  Fields without a default or factory
    (none of our stats have these) are left untouched.
    """
    if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        raise TypeError(f"reset_fields needs a dataclass instance, got {obj!r}")
    for f in dataclasses.fields(obj):
        current = getattr(obj, f.name)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            reset_fields(current)
        elif f.default is not dataclasses.MISSING:
            setattr(obj, f.name, f.default)
        elif f.default_factory is not dataclasses.MISSING:
            setattr(obj, f.name, f.default_factory())


def fields_state(obj: Any) -> dict[str, Any]:
    """Serializable snapshot of a stats dataclass (recursing into nested ones).

    The checkpoint layer uses this as the generic dataclass serializer:
    every field value is either a scalar, a container of scalars, or a
    nested stats dataclass (stored as a nested dict).
    """
    if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        raise TypeError(f"fields_state needs a dataclass instance, got {obj!r}")
    out: dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out[f.name] = fields_state(value)
        elif isinstance(value, dict):
            out[f.name] = dict(value)
        elif isinstance(value, list):
            out[f.name] = list(value)
        else:
            out[f.name] = value
    return out


def load_fields_state(obj: Any, state: dict[str, Any]) -> None:
    """Restore a :func:`fields_state` snapshot in place (nested included)."""
    for f in dataclasses.fields(obj):
        if f.name not in state:
            continue
        value = state[f.name]
        current = getattr(obj, f.name)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            load_fields_state(current, value)
        elif isinstance(current, dict):
            setattr(obj, f.name, dict(value))
        elif isinstance(current, list):
            setattr(obj, f.name, list(value))
        else:
            setattr(obj, f.name, value)


def _walk_values(prefix: str, obj: Any) -> Iterator[tuple[str, Any]]:
    """Yield (dotted_name, value) for fields and properties, recursively."""
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        name = f"{prefix}.{f.name}" if prefix else f.name
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            yield from _walk_values(name, value)
        else:
            yield name, value
    for attr, descriptor in vars(type(obj)).items():
        if isinstance(descriptor, property) and not attr.startswith("_"):
            name = f"{prefix}.{attr}" if prefix else attr
            yield name, getattr(obj, attr)


class Counter:
    """Monotonic (between resets) numeric instrument."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value: either set directly or computed on read."""

    __slots__ = ("value", "fn")

    def __init__(self, fn: Callable[[], float] | None = None) -> None:
        self.fn = fn
        self.value: float = 0.0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError("cannot set() a derived gauge")
        self.value = value

    def read(self) -> float:
        return self.fn() if self.fn is not None else self.value

    def reset(self) -> None:
        if self.fn is None:
            self.value = 0.0


class Histogram:
    """Fixed-bound histogram with count/sum/min/max summary.

    Default bounds are powers of two up to 2^20 cycles — wide enough for
    any miss latency this machine model can produce.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] | None = None) -> None:
        self.bounds: tuple[float, ...] = (
            bounds if bounds is not None
            else tuple(float(2 ** i) for i in range(21))
        )
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        # This runs once per L2 miss even with tracing disabled, so the
        # bucket search is binary, not a linear scan over the bounds.
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def reset(self) -> None:
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class MetricsRegistry:
    """Named instruments plus auto-registered stats dataclasses.

    ``register(prefix, stats_obj)`` exposes every dataclass field (and
    nested dataclass, and public property) under ``prefix.field`` in
    :meth:`snapshot`, and hooks the object into :meth:`reset` via
    :func:`reset_fields` — one call covers subsystems that don't even
    exist yet, which is what retires the hand-listed-reset bug class.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._objects: list[tuple[str, Any]] = []

    # -- instruments -------------------------------------------------------

    def _add(self, name: str, instrument):
        if name in self._instruments:
            raise ValueError(f"instrument {name!r} already registered")
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        existing = self._instruments.get(name)
        if isinstance(existing, Counter):
            return existing
        return self._add(name, Counter())

    def gauge(self, name: str,
              fn: Callable[[], float] | None = None) -> Gauge:
        existing = self._instruments.get(name)
        if isinstance(existing, Gauge) and fn is None:
            return existing
        return self._add(name, Gauge(fn))

    def histogram(self, name: str,
                  bounds: tuple[float, ...] | None = None) -> Histogram:
        existing = self._instruments.get(name)
        if isinstance(existing, Histogram):
            return existing
        return self._add(name, Histogram(bounds))

    # -- stats-object auto-registration ------------------------------------

    def register(self, prefix: str, obj: Any) -> None:
        """Expose a stats dataclass under ``prefix.*`` and hook its reset."""
        if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
            raise TypeError(
                f"register({prefix!r}) needs a dataclass instance, got {obj!r}"
            )
        if any(existing is obj for _, existing in self._objects):
            return  # idempotent: one object, one reset
        self._objects.append((prefix, obj))

    def registered_objects(self) -> list[tuple[str, Any]]:
        return list(self._objects)

    # -- the single snapshot/reset -----------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All metric values by dotted name (JSON-ready scalars mostly).

        The returned mapping is *frozen*: container values are deep
        copies, never references into the live stats objects, so mutating
        the registry after the call (more simulation, another request)
        cannot retroactively change — or race with — a snapshot someone
        already holds.
        """
        out: dict[str, Any] = {}
        for prefix, obj in self._objects:
            for name, value in _walk_values(prefix, obj):
                out[name] = _frozen(value)
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = instrument.read()
            else:
                for key, value in instrument.summary().items():
                    out[f"{name}.{key}"] = value
        return out

    def reset(self) -> None:
        """Reset every registered stats object and instrument."""
        for _, obj in self._objects:
            if hasattr(obj, "reset"):
                obj.reset()      # honour custom reset hooks if present
            else:
                reset_fields(obj)
        for instrument in self._instruments.values():
            instrument.reset()

    # -- checkpoint support ------------------------------------------------

    def instruments_state(self) -> dict[str, Any]:
        """Serializable state of the ad-hoc instruments.

        Registered stats *objects* are owned (and checkpointed) by their
        subsystems; only the registry-owned counters/gauges/histograms
        need saving here.  Derived gauges recompute, so they carry none.
        """
        out: dict[str, Any] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                if instrument.fn is None:
                    out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "buckets": list(instrument.buckets),
                    "count": instrument.count,
                    "total": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                }
        return out

    def load_instruments_state(self, state: dict[str, Any]) -> None:
        for name, entry in state.items():
            instrument = self._instruments.get(name)
            if instrument is None:
                continue
            if entry["type"] == "counter":
                instrument.value = entry["value"]
            elif entry["type"] == "gauge":
                instrument.value = entry["value"]
            else:
                instrument.buckets = list(entry["buckets"])
                instrument.count = entry["count"]
                instrument.total = entry["total"]
                instrument.min = entry["min"]
                instrument.max = entry["max"]
