"""Typed event tracing with a near-zero-cost no-op default.

Every timing-layer component (bus, engines, counter cache, Merkle walk,
RSRs, the miss path itself) takes or exposes a ``tracer``; the default is
:data:`NULL_TRACER`, whose ``enabled`` flag is ``False`` so hot paths pay
one attribute check and skip all event construction.  Swapping in a
:class:`RecordingTracer` (``python -m repro profile`` or
``api.run(trace=...)`` do this) captures the full event stream for the
Chrome-trace/CSV exporters and the cycle-attribution report.

Timestamps are *simulated processor cycles* — the exporters map one cycle
to one microsecond of trace time so Perfetto renders them 1:1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.attribution import MissRecord


@dataclass
class TraceEvent:
    """One recorded event; ``end`` is ``None`` for instant events."""

    cat: str            # track: "bus", "engine", "counter", "tree", "rsr", ...
    name: str
    begin: float
    end: float | None = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.begin) if self.end is not None else 0.0


class Tracer:
    """No-op base tracer; also the interface recording tracers implement.

    ``enabled`` is the single flag instrumented code checks before doing
    any per-event work, so the disabled path costs one attribute load.
    """

    enabled: bool = False

    def span(self, cat: str, name: str, begin: float, end: float,
             **args: Any) -> None:
        """Record a duration event on track ``cat``."""

    def instant(self, cat: str, name: str, ts: float, **args: Any) -> None:
        """Record a point event on track ``cat``."""

    def miss(self, record: "MissRecord") -> None:
        """Record one L2 miss's cycle-attribution breakdown."""

    def clear(self) -> None:
        """Drop everything recorded so far (warmup boundary)."""


class NullTracer(Tracer):
    """The default tracer: records nothing, costs (almost) nothing."""


#: Shared disabled tracer; instrumented classes default to this.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Tracer that keeps every event and miss record in memory.

    ``strict`` (the default) makes :meth:`miss` verify the attribution
    identity — the per-component breakdown must sum to
    ``auth_done - issue`` — and raise
    :class:`repro.obs.attribution.AttributionError` on any violation, so a
    broken decomposition fails the run instead of skewing a report.
    """

    enabled = True

    def __init__(self, strict: bool = True, tolerance: float = 0.01):
        self.strict = strict
        self.tolerance = tolerance
        self.events: list[TraceEvent] = []
        self.misses: list["MissRecord"] = []

    def span(self, cat: str, name: str, begin: float, end: float,
             **args: Any) -> None:
        self.events.append(TraceEvent(cat, name, begin, end, args))

    def instant(self, cat: str, name: str, ts: float, **args: Any) -> None:
        self.events.append(TraceEvent(cat, name, ts, None, args))

    def miss(self, record: "MissRecord") -> None:
        if self.strict:
            record.check(self.tolerance)
        # Detach the breakdown from the producer's live PathTime: ``parts``
        # often *is* the dict a PathTime keeps advancing, and a recorded
        # miss (exported later, possibly from another thread's metrics
        # scrape) must be immune to that mutation.
        record.parts = dict(record.parts)
        self.misses.append(record)

    def clear(self) -> None:
        self.events.clear()
        self.misses.clear()

    # -- query helpers (tests and reports) ---------------------------------

    def spans(self, cat: str | None = None) -> list[TraceEvent]:
        return [e for e in self.events
                if e.is_span and (cat is None or e.cat == cat)]

    def instants(self, cat: str | None = None) -> list[TraceEvent]:
        return [e for e in self.events
                if not e.is_span and (cat is None or e.cat == cat)]

    def __len__(self) -> int:
        return len(self.events)
