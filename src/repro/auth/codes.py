"""Merkle-tree geometry: arity, level sizes, and node addressing.

The tree is K-ary where K = block_size / mac_size (section 3): a 64-byte
code block holds K child authentication codes.  With the default 64-bit
MACs, K = 8; with 128-bit MACs K = 4, which for a 1GB memory yields the
12-level, 33%-overhead tree the paper uses to motivate smaller codes.

Level 0 is the protected leaves (data blocks plus direct-counter blocks,
per Figure 3); levels 1..depth are code blocks stored in a reserved DRAM
region; the single top code block's own MAC lives in the tamper-proof
on-chip root register.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TreeGeometry:
    """Static shape of a Merkle tree over a fixed number of leaves."""

    num_leaves: int
    arity: int
    block_size: int
    mac_bytes: int
    #: nodes per level; level_sizes[0] == num_leaves, level_sizes[-1] == 1
    level_sizes: tuple[int, ...]

    @property
    def depth(self) -> int:
        """Number of code-block levels (excludes the leaf level)."""
        return len(self.level_sizes) - 1

    @property
    def total_code_blocks(self) -> int:
        return sum(self.level_sizes[1:])

    @property
    def storage_overhead(self) -> float:
        """Code storage as a fraction of leaf storage."""
        return self.total_code_blocks / self.num_leaves

    def parent_index(self, index: int) -> int:
        return index // self.arity

    def slot_in_parent(self, index: int) -> int:
        return index % self.arity

    def child_indices(self, level: int, index: int) -> range:
        """Child node indices (at ``level - 1``) of node ``index``."""
        if level < 1:
            raise ValueError("leaves have no children")
        start = index * self.arity
        return range(start, min(start + self.arity,
                                self.level_sizes[level - 1]))

    def level_offset_blocks(self, level: int) -> int:
        """Dense block offset of a level's first code block in the region."""
        if not 1 <= level <= self.depth:
            raise ValueError(f"level must be in [1, {self.depth}]")
        return sum(self.level_sizes[1:level])

    def node_region_block(self, level: int, index: int) -> int:
        """Dense block index of a code node inside the code region."""
        if not 0 <= index < self.level_sizes[level]:
            raise ValueError(
                f"node index {index} out of range for level {level}"
            )
        return self.level_offset_blocks(level) + index


def build_geometry(num_leaves: int, block_size: int,
                   mac_bits: int) -> TreeGeometry:
    """Compute the level structure for a tree over ``num_leaves`` blocks."""
    if num_leaves < 1:
        raise ValueError("tree needs at least one leaf")
    mac_bytes = mac_bits // 8
    arity = block_size // mac_bytes
    if arity < 2:
        raise ValueError("MAC too large for block size: arity < 2")
    sizes = [num_leaves]
    while sizes[-1] > 1:
        sizes.append(-(-sizes[-1] // arity))  # ceil
    if len(sizes) == 1:
        sizes.append(1)  # a single leaf still gets one code block above it
    return TreeGeometry(
        num_leaves=num_leaves,
        arity=arity,
        block_size=block_size,
        mac_bytes=mac_bytes,
        level_sizes=tuple(sizes),
    )


def build_flat_geometry(num_leaves: int, block_size: int,
                        mac_bits: int) -> TreeGeometry:
    """One-level geometry for SecDDR-style MAC-of-MACs integrity.

    Leaf MACs are grouped into level-1 code blocks exactly as in the tree,
    but there is no level above them: each group block's own MAC lives in
    an on-chip table, so verification fetches at most one code block no
    matter how large memory is.  ``level_sizes[-1]`` is the group count,
    not 1 — consumers that assume a single root must not use this geometry
    (the SecDDR authenticator and the timing chain walk are level-agnostic).
    """
    if num_leaves < 1:
        raise ValueError("flat geometry needs at least one leaf")
    mac_bytes = mac_bits // 8
    arity = block_size // mac_bytes
    if arity < 2:
        raise ValueError("MAC too large for block size: arity < 2")
    ngroups = -(-num_leaves // arity)  # ceil
    return TreeGeometry(
        num_leaves=num_leaves,
        arity=arity,
        block_size=block_size,
        mac_bytes=mac_bytes,
        level_sizes=(num_leaves, ngroups),
    )


def merkle_levels_for_memory(memory_bytes: int, block_size: int,
                             mac_bits: int) -> int:
    """Tree depth for a memory of a given size — used by the timing model.

    Matches section 5: "we assume a 512MB main memory when determining the
    number of levels in Merkle trees".
    """
    return build_geometry(memory_bytes // block_size, block_size,
                          mac_bits).depth
