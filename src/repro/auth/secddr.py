"""SecDDR-style flat integrity: leaf MACs anchored by on-chip MAC-of-MACs.

SecDDR (arXiv:2209.00685) observes that replay protection does not need a
logarithmic tree walk if the memory interface itself is authenticated: the
per-block MACs are grouped into *MAC code blocks* (same packing as the
Merkle tree's level 1), and each group block's own MAC — a MAC-of-MACs —
is small enough to keep in on-chip storage.  Verifying a fetched block
then costs at most one extra DRAM transfer (its group block, when not
cached) and two MAC checks, independent of memory size; replaying a group
block fails against the on-chip table the way replaying the tree root
fails against the root register.

:class:`SecDDRAuthenticator` is a drop-in for
:class:`~repro.auth.merkle.MerkleTree`: same constructor, same leaf
protocol (``verify_leaf``/``update_leaf`` plus the batched variants), same
``node_cache``/``stats``/``state_dict`` surface, and the same
:class:`~repro.auth.merkle.IntegrityViolation` on mismatch — so the fuzz
oracle, the attack suite, recovery, and checkpointing all work unchanged.
The geometry it expects is :func:`repro.auth.codes.build_flat_geometry`
(depth 1, ``level_sizes[-1]`` = the group count, not 1).

The trade against the tree is capacity, not strength: the on-chip table
holds one MAC per group block (``num_leaves / arity`` entries) instead of
one root MAC, which is exactly the per-channel on-chip cost the SecDDR
paper budgets.  The replay *surface* differs too — every group verifies
against its own on-chip anchor directly, so there is no multi-level chain
for an attacker to race, but also no single root register summarizing the
whole memory image.
"""

from __future__ import annotations

from repro.auth.codes import TreeGeometry
from repro.auth.merkle import IntegrityViolation, MerkleStats
from repro.auth.schemes import MACScheme
from repro.crypto.gcm import constant_time_equal
from repro.memory.cache import Cache
from repro.memory.dram import MainMemory
from repro.obs.tracer import Tracer


class SecDDRAuthenticator:
    """Flat MAC-of-MACs integrity backend (MerkleTree drop-in)."""

    #: optional observability hook, same contract as MerkleTree.tracer
    tracer: Tracer | None = None

    def __init__(self, geometry: TreeGeometry, mac_scheme: MACScheme,
                 dram: MainMemory, code_region_base: int,
                 node_cache_bytes: int = 32 * 1024, node_cache_assoc: int = 8):
        if geometry.depth != 1:
            raise ValueError(
                "SecDDRAuthenticator needs a flat (depth-1) geometry; "
                "use build_flat_geometry()")
        self.geometry = geometry
        self.mac = mac_scheme
        self.dram = dram
        self.code_region_base = code_region_base
        self.block_size = geometry.block_size
        self.node_cache = Cache(node_cache_bytes, node_cache_assoc,
                                self.block_size, name="merkle-nodes")
        #: on-chip MAC-of-MACs table: group index -> MAC of the group
        #: block's image as last written back to DRAM
        self._group_macs: dict[int, bytes] = {}
        self._derivative: dict[int, int] = {}
        # Groups whose image has ever reached DRAM; an absent group is
        # virgin (trusted all-zeros, no DRAM read), as in MerkleTree.
        self._node_written: set[int] = set()
        self.stats = MerkleStats()

    # -- addressing ----------------------------------------------------------

    def node_address(self, level: int, index: int) -> int:
        """DRAM address of a group code block (level must be 1)."""
        block = self.geometry.node_region_block(level, index)
        return self.code_region_base + block * self.block_size

    def derivative_counter(self, level: int, index: int) -> int:
        return self._derivative.get(index, 0)

    # -- MAC helpers ----------------------------------------------------------

    def _group_mac(self, index: int, content: bytes) -> bytes:
        self.stats.mac_computations += 1
        return self.mac.compute(self.node_address(1, index),
                                self._derivative.get(index, 0), content)

    def leaf_mac(self, leaf_address: int, counter: int, content: bytes,
                 precomputed: bytes | None = None) -> bytes:
        self.stats.mac_computations += 1
        if precomputed is not None:
            return precomputed
        return self.mac.compute(leaf_address, counter, content)

    # -- trusted-group acquisition --------------------------------------------

    def _cached_payload(self, index: int) -> bytearray | None:
        line = self.node_cache.lookup(self.node_address(1, index))
        return line.payload if line is not None else None

    def ensure_group_trusted(self, index: int,
                             _fetched: list | None = None) -> bytearray:
        """Return a group block's payload, fetching and verifying on miss.

        Unlike the tree there is no parent chain: a missing group is read
        from DRAM once and its MAC compared against the on-chip table —
        the constant-cost verification SecDDR trades its on-chip storage
        for.  A mismatch (tampered or replayed group image) raises
        :class:`IntegrityViolation` with ``kind="node"``.
        """
        payload = self._cached_payload(index)
        if payload is not None:
            self.node_cache.access(self.node_address(1, index))
            return payload
        if index not in self._node_written:
            payload = bytearray(self.block_size)
            self._install(index, payload, dirty=False)
            return payload
        address = self.node_address(1, index)
        content = self.dram.read_block(address)
        self.stats.node_fetches += 1
        if _fetched is not None:
            _fetched.append(1)
        expected = self._group_macs[index]
        actual = self._group_mac(index, content)
        if not constant_time_equal(actual, expected):
            self.stats.violations_detected += 1
            raise IntegrityViolation(
                kind="node", address=address, level=1, index=index,
                counter=self._derivative.get(index, 0),
                expected=expected, actual=actual,
            )
        payload = bytearray(content)
        self._install(index, payload, dirty=False)
        return payload

    def _install(self, index: int, payload: bytearray, dirty: bool) -> None:
        eviction = self.node_cache.fill(self.node_address(1, index),
                                        dirty=dirty, payload=payload)
        if eviction is not None and eviction.dirty:
            self._write_back_group(eviction.address, eviction.payload)

    def _acquire_for_update(self, index: int) -> bytearray:
        """Trusted group payload, guaranteed still resident (cf. MerkleTree).

        Group write-backs never touch the node cache (no parent chain), so
        one install cannot displace itself; the retry loop only guards the
        degenerate single-set cache geometry.
        """
        for _ in range(8):
            payload = self.ensure_group_trusted(index)
            if self._cached_payload(index) is payload:
                return payload
        raise RuntimeError(
            "node cache too small to pin a MAC-group update"
        )

    def _group_for_address(self, address: int) -> int:
        block = (address - self.code_region_base) // self.block_size
        if not 0 <= block < self.geometry.level_sizes[1]:
            raise ValueError(f"address {address:#x} is not a MAC group block")
        return block

    def _write_back_group(self, address: int, payload: bytearray) -> None:
        """Evicted-dirty-group protocol: bump counter, write, re-anchor.

        The new MAC goes straight into the on-chip table — there is no
        parent block to pin and no recursion, which is the structural
        simplification SecDDR buys.
        """
        index = self._group_for_address(address)
        self._derivative[index] = self._derivative.get(index, 0) + 1
        self._node_written.add(index)
        content = bytes(payload)
        self.dram.write_block(address, content)
        self.stats.node_writebacks += 1
        self._group_macs[index] = self._group_mac(index, content)

    # -- public leaf protocol ---------------------------------------------------

    def verify_leaf(self, leaf_index: int, leaf_address: int, counter: int,
                    content: bytes,
                    _precomputed_mac: bytes | None = None) -> int:
        """Verify a fetched leaf; returns levels fetched (0 or 1)."""
        self.stats.leaf_verifications += 1
        fetched: list[int] = []
        parent = self.geometry.parent_index(leaf_index)
        payload = self.ensure_group_trusted(parent, _fetched=fetched)
        slot = self.geometry.slot_in_parent(leaf_index)
        mb = self.geometry.mac_bytes
        expected = bytes(payload[slot * mb:(slot + 1) * mb])
        actual = self.leaf_mac(leaf_address, counter, content,
                               precomputed=_precomputed_mac)
        tracer = self.tracer
        if not constant_time_equal(actual, expected):
            self.stats.violations_detected += 1
            if tracer is not None and tracer.enabled:
                tracer.instant("merkle", "violation",
                               float(self.stats.leaf_verifications),
                               leaf=leaf_index, address=leaf_address)
            raise IntegrityViolation(
                kind="leaf", address=leaf_address, leaf_index=leaf_index,
                counter=counter, expected=expected, actual=actual,
            )
        self.stats.record_chain(len(fetched))
        if tracer is not None and tracer.enabled:
            tracer.instant("merkle", "verify-leaf",
                           float(self.stats.leaf_verifications),
                           leaf=leaf_index, levels_fetched=len(fetched))
        return len(fetched)

    def update_leaf(self, leaf_index: int, leaf_address: int, counter: int,
                    content: bytes,
                    _precomputed_mac: bytes | None = None) -> None:
        """Install a written-back leaf's MAC in its (pinned) group block."""
        self.stats.leaf_updates += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("merkle", "update-leaf",
                           float(self.stats.leaf_updates), leaf=leaf_index)
        parent = self.geometry.parent_index(leaf_index)
        payload = self._acquire_for_update(parent)
        slot = self.geometry.slot_in_parent(leaf_index)
        mb = self.geometry.mac_bytes
        payload[slot * mb:(slot + 1) * mb] = self.leaf_mac(
            leaf_address, counter, content, _precomputed_mac
        )
        assert self.node_cache.mark_dirty(self.node_address(1, parent))

    # -- batched leaf protocol (same regrouping contract as MerkleTree) --------

    def _batch_leaf_macs(self, grouped: list[tuple]) -> list[bytes | None]:
        if len(grouped) < 2:
            return [None] * len(grouped)
        return list(self.mac.compute_many(
            [(leaf_address, counter, content)
             for _, leaf_address, counter, content in grouped]
        ))

    def _grouped_by_parent(self, items: list[tuple]) -> list[tuple]:
        groups: dict[int, list[tuple]] = {}
        for item in items:
            parent = self.geometry.parent_index(item[0])
            groups.setdefault(parent, []).append(item)
        return [item for group in groups.values() for item in group]

    def verify_leaves(self, items: list[tuple[int, int, int, bytes]]) -> int:
        grouped = self._grouped_by_parent(items)
        macs = self._batch_leaf_macs(grouped)
        total = 0
        for (leaf_index, leaf_address, counter, content), mac in zip(
                grouped, macs):
            total += self.verify_leaf(leaf_index, leaf_address, counter,
                                      content, _precomputed_mac=mac)
        return total

    def update_leaves(self, items: list[tuple[int, int, int, bytes]]) -> None:
        grouped = self._grouped_by_parent(items)
        macs = self._batch_leaf_macs(grouped)
        for (leaf_index, leaf_address, counter, content), mac in zip(
                grouped, macs):
            self.update_leaf(leaf_index, leaf_address, counter, content,
                             _precomputed_mac=mac)

    def flush(self) -> None:
        """Write every dirty cached group back (single level, one sweep)."""
        for address, line in list(self.node_cache.dirty_blocks()):
            line.dirty = False
            self._write_back_group(address, line.payload)

    # -- checkpoint support ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "group_macs": dict(self._group_macs),
            "derivative": dict(self._derivative),
            "node_written": set(self._node_written),
            "node_cache": self.node_cache.state_dict(),
            "stats": {
                "leaf_verifications": self.stats.leaf_verifications,
                "leaf_updates": self.stats.leaf_updates,
                "node_fetches": self.stats.node_fetches,
                "node_writebacks": self.stats.node_writebacks,
                "mac_computations": self.stats.mac_computations,
                "violations_detected": self.stats.violations_detected,
                "chain_lengths": dict(self.stats.chain_lengths),
            },
        }

    def load_state(self, state: dict) -> None:
        self._group_macs = {int(k): bytes(v)
                            for k, v in state["group_macs"].items()}
        self._derivative = {int(k): v
                            for k, v in state["derivative"].items()}
        self._node_written = set(state["node_written"])
        self.node_cache.load_state(state["node_cache"])
        st = state["stats"]
        self.stats.leaf_verifications = st["leaf_verifications"]
        self.stats.leaf_updates = st["leaf_updates"]
        self.stats.node_fetches = st["node_fetches"]
        self.stats.node_writebacks = st["node_writebacks"]
        self.stats.mac_computations = st["mac_computations"]
        self.stats.violations_detected = st["violations_detected"]
        self.stats.chain_lengths = {
            int(k): v for k, v in st["chain_lengths"].items()
        }
