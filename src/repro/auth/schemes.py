"""MAC scheme objects binding keys to the GCM / SHA-1 code constructions.

A ``MACScheme`` computes the authentication code of one memory block given
its address, its counter, and its (cipher)text.  Two implementations mirror
the paper's two datapaths:

* :class:`GCMMACScheme` — GHASH + AES authentication pad (Figure 2, lower
  half).  The pad depends only on (address, counter), which is what lets
  the timing layer overlap its generation with the memory fetch.
* :class:`SHAMACScheme` — HMAC-SHA1 over (address || counter || content),
  standing in for the MD-5/SHA-1 MACs of prior work.

Both truncate to the configured MAC width (32/64/128 bits, Figure 10).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto.aes import AES128
from repro.crypto.mac import gcm_block_mac, gcm_block_macs, sha_block_mac


class MACScheme(ABC):
    """Keyed per-block MAC with a configurable truncated width."""

    def __init__(self, mac_bits: int = 64):
        self.mac_bits = mac_bits
        self.mac_bytes = mac_bits // 8

    @abstractmethod
    def compute(self, address: int, counter: int, content: bytes) -> bytes:
        """MAC of one block's content under its address and counter."""

    def compute_many(self, items: list[tuple[int, int, bytes]]) -> list[bytes]:
        """MACs of many ``(address, counter, content)`` blocks, in order.

        The default is the scalar loop; schemes with a batch kernel
        override this.  Results are byte-identical to per-item
        :meth:`compute` calls either way.
        """
        return [self.compute(address, counter, content)
                for address, counter, content in items]

    @property
    @abstractmethod
    def name(self) -> str:
        """Scheme label used in benchmark output."""


class GCMMACScheme(MACScheme):
    """GCM authentication codes sharing the AES engine with encryption."""

    def __init__(self, key: bytes, mac_bits: int = 64,
                 kernel: str = "table"):
        super().__init__(mac_bits)
        self._aes = AES128(key)
        self._ghash_key = self._aes.encrypt_block(b"\x00" * 16)
        self.kernel = kernel

    def compute(self, address: int, counter: int, content: bytes) -> bytes:
        return gcm_block_mac(self._aes, self._ghash_key, address, counter,
                             content, self.mac_bits)

    def compute_many(self, items: list[tuple[int, int, bytes]]) -> list[bytes]:
        return gcm_block_macs(self._aes, self._ghash_key, items,
                              self.mac_bits, kernel=self.kernel)

    @property
    def name(self) -> str:
        return "gcm"


class SHAMACScheme(MACScheme):
    """HMAC-SHA1 authentication codes (prior-work baseline)."""

    def __init__(self, key: bytes, mac_bits: int = 64):
        super().__init__(mac_bits)
        self._key = bytes(key)

    def compute(self, address: int, counter: int, content: bytes) -> bytes:
        return sha_block_mac(self._key, address, counter, content,
                             self.mac_bits)

    @property
    def name(self) -> str:
        return "sha1"
