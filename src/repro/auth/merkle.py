"""Functional Merkle tree over data blocks and direct-counter blocks.

Implements the cached-tree protocol of section 3 / Figure 3:

* The leaf level covers both data blocks and the counter blocks directly
  used for encryption, closing the counter-replay hole of section 4.3.
* Code blocks at levels 1..depth live in an untrusted DRAM region; each
  64-byte code block holds K child MACs (K = arity from the MAC width).
* On-chip trust anchors: a dedicated node cache (a resident node is
  trusted — it was verified on the way in and cannot be tampered with) and
  the root register holding the top code block's MAC.
* A fetched block verifies up the tree **only until the first on-chip
  node**; an update propagates up only to the first on-chip node, whose
  line turns dirty.  Dirty node write-backs bump the node's *derivative
  counter*, recompute its MAC under the new counter, and install that MAC
  in the parent (recursively ensuring the parent is on-chip).
* Tampering with anything below a trusted node — leaf bytes, code-block
  bytes, or a derivative counter image — surfaces as a MAC mismatch, which
  raises :class:`IntegrityViolation`.

Derivative counters (section 4.3) are maintained per node in a scheme-side
table.  The paper stores them in untrusted memory and relies on the fact
that they are not secrecy-critical: forging one merely fails verification.
The reproduction keeps them in the tree object for simplicity — the
detection behaviour is identical because a tampered derivative counter and
a tampered node image both surface as the same MAC mismatch, and the
attack suite exercises that path by corrupting node images directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auth.codes import TreeGeometry
from repro.auth.schemes import MACScheme
from repro.crypto.gcm import constant_time_equal
from repro.memory.cache import Cache
from repro.memory.dram import MainMemory
from repro.obs.metrics import reset_fields
from repro.obs.tracer import Tracer


class IntegrityViolation(Exception):
    """A MAC check failed: the memory image was tampered with or replayed.

    Beyond the human-readable message, the exception carries the *where*
    and the *what* of the failure — block address, tree level, and the
    expected-vs-computed MACs — so a recovery controller (or a human
    reading a fuzz log) can triage without parsing strings.  Constructing
    with a plain message (``IntegrityViolation("...")``) stays valid for
    subclasses and ad-hoc raises.
    """

    def __init__(self, message: str | None = None, *,
                 kind: str = "unknown", address: int | None = None,
                 level: int | None = None, index: int | None = None,
                 leaf_index: int | None = None, counter: int | None = None,
                 expected: bytes | None = None,
                 actual: bytes | None = None) -> None:
        self.kind = kind
        self.address = address
        self.level = level
        self.index = index
        self.leaf_index = leaf_index
        self.counter = counter
        self.expected = bytes(expected) if expected is not None else None
        self.actual = bytes(actual) if actual is not None else None
        super().__init__(message if message is not None else self.describe())

    def describe(self) -> str:
        """Build the message from the structured fields."""
        if self.kind == "node":
            head = f"Merkle node (level {self.level}, index {self.index})"
        elif self.kind == "leaf":
            head = f"leaf {self.leaf_index}"
        else:
            head = "integrity check"
        if self.address is not None and self.kind != "node":
            head += f" (address {self.address:#x})"
        parts = [head, "failed verification"]
        if self.counter is not None:
            parts.append(f"under counter {self.counter}")
        text = " ".join(parts)
        if self.expected is not None and self.actual is not None:
            text += (f": expected MAC {self.expected.hex()}, "
                     f"computed {self.actual.hex()}")
        return text


@dataclass
class MerkleStats:
    """Tree activity counters (node traffic drives Figures 7-10)."""

    leaf_verifications: int = 0
    leaf_updates: int = 0
    node_fetches: int = 0
    node_writebacks: int = 0
    mac_computations: int = 0
    violations_detected: int = 0
    #: distribution of how many tree levels had to be fetched per leaf verify
    chain_lengths: dict[int, int] = field(default_factory=dict)

    def record_chain(self, length: int) -> None:
        self.chain_lengths[length] = self.chain_lengths.get(length, 0) + 1

    def reset(self) -> None:
        reset_fields(self)


class MerkleTree:
    """Cached K-ary Merkle tree with derivative counters and a root register."""

    #: optional observability hook; leaf verifies/updates, node fetches,
    #: and violations become "merkle" track instants (sequenced by the
    #: functional op count — functional time does not advance)
    tracer: Tracer | None = None

    def __init__(self, geometry: TreeGeometry, mac_scheme: MACScheme,
                 dram: MainMemory, code_region_base: int,
                 node_cache_bytes: int = 32 * 1024, node_cache_assoc: int = 8):
        self.geometry = geometry
        self.mac = mac_scheme
        self.dram = dram
        self.code_region_base = code_region_base
        self.block_size = geometry.block_size
        self.node_cache = Cache(node_cache_bytes, node_cache_assoc,
                                self.block_size, name="merkle-nodes")
        self._derivative: dict[tuple[int, int], int] = {}
        # Nodes whose image has ever been written to DRAM.  A node absent
        # from this set is *virgin*: its logical content is all-zeros and is
        # trusted without a DRAM read (boot-time tree initialization
        # compressed to first touch — see the module docstring).
        self._node_written: set[tuple[int, int]] = set()
        # Nodes currently mid write-back.  Re-entrant tree walks (the
        # eviction cascade of a small node cache) must see such a node's
        # live buffer, never its half-published DRAM/counter/parent-slot
        # state — see :meth:`_write_back_node`.
        self._in_flight: dict[tuple[int, int], bytearray] = {}
        self.stats = MerkleStats()
        # Root register: MAC of the top code block as last written to DRAM.
        self._root_register = self._node_mac(self.geometry.depth, 0,
                                             bytes(self.block_size))
        self.stats.mac_computations = 0  # don't count initialization

    # -- addressing ----------------------------------------------------------

    def node_address(self, level: int, index: int) -> int:
        """DRAM address of a code block."""
        block = self.geometry.node_region_block(level, index)
        return self.code_region_base + block * self.block_size

    def derivative_counter(self, level: int, index: int) -> int:
        return self._derivative.get((level, index), 0)

    # -- MAC helpers -----------------------------------------------------------

    def _node_mac(self, level: int, index: int, content: bytes) -> bytes:
        self.stats.mac_computations += 1
        return self.mac.compute(self.node_address(level, index),
                                self.derivative_counter(level, index),
                                content)

    def leaf_mac(self, leaf_address: int, counter: int, content: bytes,
                 precomputed: bytes | None = None) -> bytes:
        # ``precomputed`` carries a MAC the batch path already obtained from
        # MACScheme.compute_many — same inputs, same scheme, same bytes —
        # so it still counts as one MAC computation here (the batch helper
        # deliberately does not touch the tree's stats).
        self.stats.mac_computations += 1
        if precomputed is not None:
            return precomputed
        return self.mac.compute(leaf_address, counter, content)

    # -- trusted-node acquisition ---------------------------------------------

    def _cached_payload(self, level: int, index: int) -> bytearray | None:
        line = self.node_cache.lookup(self.node_address(level, index))
        return line.payload if line is not None else None

    def _expected_mac_from_parent(self, level: int, index: int) -> bytes:
        """Read this node's MAC from its (trusted) parent or the root."""
        if level == self.geometry.depth:
            return self._root_register
        parent = self.geometry.parent_index(index)
        payload = self.ensure_node_trusted(level + 1, parent)
        slot = self.geometry.slot_in_parent(index)
        mb = self.geometry.mac_bytes
        return bytes(payload[slot * mb:(slot + 1) * mb])

    def ensure_node_trusted(self, level: int, index: int,
                            _fetched: list | None = None) -> bytearray:
        """Return the node's payload, fetching and verifying if absent.

        A resident node is trusted as-is.  A missing node is read from
        DRAM, its MAC recomputed under its derivative counter and compared
        with the entry in its (recursively trusted) parent; a mismatch
        raises :class:`IntegrityViolation`.  ``_fetched`` collects the
        levels fetched, for chain-length statistics.
        """
        in_flight = self._in_flight.get((level, index))
        if in_flight is not None:
            # Mid write-back: the live buffer is the node's authoritative,
            # trusted content (it was verified while resident).  Reading
            # DRAM here would race the half-published write-back state.
            return in_flight
        payload = self._cached_payload(level, index)
        if payload is not None:
            self.node_cache.access(self.node_address(level, index))
            return payload
        address = self.node_address(level, index)
        if (level, index) not in self._node_written:
            # Virgin node: trusted all-zeros content, no DRAM access needed.
            payload = bytearray(self.block_size)
            self._install(level, index, payload, dirty=False)
            return payload
        # Resolve the parent chain BEFORE reading this node's image: the
        # walk can cascade into write-backs that touch this very node (it
        # may be an ancestor of an evicted dirty node), re-writing its
        # DRAM image and bumping its derivative counter — a pre-walk read
        # would then verify stale bytes against the fresh parent slot.
        expected = self._expected_mac_from_parent(level, index)
        resident = self._cached_payload(level, index)
        if resident is not None:
            # The walk installed this node; the resident copy (possibly
            # already carrying re-posted child MACs) is authoritative.
            self.node_cache.access(address)
            return resident
        content = self.dram.read_block(address)
        self.stats.node_fetches += 1
        if _fetched is not None:
            _fetched.append(level)
        actual = self._node_mac(level, index, content)
        if not constant_time_equal(actual, expected):
            self.stats.violations_detected += 1
            raise IntegrityViolation(
                kind="node", address=address, level=level, index=index,
                counter=self.derivative_counter(level, index),
                expected=expected, actual=actual,
            )
        payload = bytearray(content)
        self._install(level, index, payload, dirty=False)
        return payload

    def _install(self, level: int, index: int, payload: bytearray,
                 dirty: bool) -> None:
        eviction = self.node_cache.fill(self.node_address(level, index),
                                        dirty=dirty, payload=payload)
        if eviction is not None and eviction.dirty:
            self._write_back_node(eviction.address, eviction.payload)

    def _acquire_for_update(self, level: int, index: int) -> bytearray:
        """Trusted payload of a node, guaranteed still resident.

        :meth:`ensure_node_trusted` can — on a small node cache — trigger
        an eviction cascade that displaces the very node it just installed.
        Mutating the returned buffer would then edit a detached copy and
        the subsequent ``mark_dirty`` would silently miss, losing a MAC
        installation (the child later fails verification with no tampering
        anywhere).  Updates therefore re-check residency and retry; each
        retry re-fetches a clean or properly written-back image, so the
        loop converges unless the cache cannot hold even one update chain.
        """
        assert (level, index) not in self._in_flight
        for _ in range(8):
            payload = self.ensure_node_trusted(level, index)
            if self._cached_payload(level, index) is payload:
                return payload
        raise RuntimeError(
            "node cache too small to pin a Merkle update chain"
        )

    def _post_target(self, level: int, index: int) -> tuple[bytearray, bool]:
        """Where to install a child MAC: ``(payload, needs_mark_dirty)``.

        A node that is itself mid write-back is mutated in place — the
        in-flight frame serializes its content *after* its parent
        acquisition cascade completes, so the posted MAC reaches DRAM and
        the grandparent without a separate dirty marking.
        """
        in_flight = self._in_flight.get((level, index))
        if in_flight is not None:
            return in_flight, False
        return self._acquire_for_update(level, index), True

    def _node_for_address(self, address: int) -> tuple[int, int]:
        """Inverse of :meth:`node_address`."""
        block = (address - self.code_region_base) // self.block_size
        for level in range(1, self.geometry.depth + 1):
            offset = self.geometry.level_offset_blocks(level)
            if offset <= block < offset + self.geometry.level_sizes[level]:
                return level, block - offset
        raise ValueError(f"address {address:#x} is not a tree node")

    def _write_back_node(self, address: int, payload: bytearray) -> None:
        """Evicted-dirty-node protocol: bump counter, re-MAC, tell parent.

        The publish must look atomic to re-entrant tree walks: acquiring
        the parent can cascade into write-backs of *other* dirty nodes
        whose verification chains re-fetch this very node, so the parent
        is pinned **first** (while this node is registered in flight and
        served from its live buffer), and only then are the DRAM image,
        derivative counter, and parent slot updated — with no cache
        activity in between.  The cascade may legitimately mutate this
        node's buffer (a child posting its MAC), which is why the content
        is serialized after the acquisition, not before.
        """
        level, index = self._node_for_address(address)
        key = (level, index)
        self._in_flight[key] = payload
        try:
            parent_payload = needs_dirty = None
            if level < self.geometry.depth:
                parent = self.geometry.parent_index(index)
                parent_payload, needs_dirty = self._post_target(
                    level + 1, parent)
            self._derivative[key] = self._derivative.get(key, 0) + 1
            self._node_written.add(key)
            content = bytes(payload)
            self.dram.write_block(address, content)
            self.stats.node_writebacks += 1
            new_mac = self._node_mac(level, index, content)
            if level == self.geometry.depth:
                self._root_register = new_mac
                return
            slot = self.geometry.slot_in_parent(index)
            mb = self.geometry.mac_bytes
            parent_payload[slot * mb:(slot + 1) * mb] = new_mac
            if needs_dirty:
                assert self.node_cache.mark_dirty(
                    self.node_address(level + 1, parent)
                )
        finally:
            del self._in_flight[key]

    # -- public leaf protocol ---------------------------------------------------

    def verify_leaf(self, leaf_index: int, leaf_address: int, counter: int,
                    content: bytes,
                    _precomputed_mac: bytes | None = None) -> int:
        """Verify a fetched leaf block against the tree.

        Returns the number of tree levels that had to be fetched from
        memory (the timing model charges one node transfer plus one MAC
        check per fetched level).  Raises :class:`IntegrityViolation` when
        any MAC on the chain mismatches.
        """
        self.stats.leaf_verifications += 1
        fetched: list[int] = []
        parent = self.geometry.parent_index(leaf_index)
        payload = self.ensure_node_trusted(1, parent, _fetched=fetched)
        slot = self.geometry.slot_in_parent(leaf_index)
        mb = self.geometry.mac_bytes
        expected = bytes(payload[slot * mb:(slot + 1) * mb])
        actual = self.leaf_mac(leaf_address, counter, content,
                               precomputed=_precomputed_mac)
        tracer = self.tracer
        if not constant_time_equal(actual, expected):
            self.stats.violations_detected += 1
            if tracer is not None and tracer.enabled:
                tracer.instant("merkle", "violation",
                               float(self.stats.leaf_verifications),
                               leaf=leaf_index, address=leaf_address)
            raise IntegrityViolation(
                kind="leaf", address=leaf_address, leaf_index=leaf_index,
                counter=counter, expected=expected, actual=actual,
            )
        self.stats.record_chain(len(fetched))
        if tracer is not None and tracer.enabled:
            tracer.instant("merkle", "verify-leaf",
                           float(self.stats.leaf_verifications),
                           leaf=leaf_index, levels_fetched=len(fetched))
        return len(fetched)

    def update_leaf(self, leaf_index: int, leaf_address: int, counter: int,
                    content: bytes,
                    _precomputed_mac: bytes | None = None) -> None:
        """Install a written-back leaf's MAC; propagates to first cached node."""
        self.stats.leaf_updates += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("merkle", "update-leaf",
                           float(self.stats.leaf_updates), leaf=leaf_index)
        parent = self.geometry.parent_index(leaf_index)
        payload, needs_dirty = self._post_target(1, parent)
        slot = self.geometry.slot_in_parent(leaf_index)
        mb = self.geometry.mac_bytes
        payload[slot * mb:(slot + 1) * mb] = self.leaf_mac(
            leaf_address, counter, content, precomputed=_precomputed_mac
        )
        if needs_dirty:
            assert self.node_cache.mark_dirty(self.node_address(1, parent))

    # -- batched leaf protocol --------------------------------------------------
    #
    # Batch entries are regrouped so that leaves sharing a parent code block
    # are processed back to back: the shared ancestor chain is fetched and
    # verified once (by the first leaf of the group) and every sibling then
    # finds it resident, regardless of how small the node cache is or how
    # the caller interleaved addresses.  Groups run in first-seen order and
    # leaves keep their relative order within a group, so the per-leaf
    # results are identical to the equivalent scalar loop over the grouped
    # sequence.

    def _batch_leaf_macs(self, grouped: list[tuple]) -> list[bytes | None]:
        """Precompute the batch's leaf MACs through the scheme's bulk kernel.

        Single-leaf batches keep the scalar path (nothing to batch); larger
        ones go through :meth:`MACScheme.compute_many`, whose results are
        byte-identical to per-leaf :meth:`MACScheme.compute` calls.  The
        per-leaf ``leaf_mac`` bookkeeping still runs when the values are
        consumed, so ``stats.mac_computations`` is unchanged.
        """
        if len(grouped) < 2:
            return [None] * len(grouped)
        return list(self.mac.compute_many(
            [(leaf_address, counter, content)
             for _, leaf_address, counter, content in grouped]
        ))

    def _grouped_by_parent(self, items: list[tuple]) -> list[tuple]:
        groups: dict[int, list[tuple]] = {}
        for item in items:
            parent = self.geometry.parent_index(item[0])
            groups.setdefault(parent, []).append(item)
        return [item for group in groups.values() for item in group]

    def verify_leaves(self, items: list[tuple[int, int, int, bytes]]) -> int:
        """Verify many fetched leaves with shared-ancestor deduplication.

        ``items`` holds ``(leaf_index, leaf_address, counter, content)``
        tuples.  Returns the total number of tree levels fetched across the
        batch.  Raises :class:`IntegrityViolation` on the first mismatch
        (in grouped order); earlier leaves of the batch have then already
        been verified, later ones have not been examined.
        """
        grouped = self._grouped_by_parent(items)
        macs = self._batch_leaf_macs(grouped)
        total = 0
        for (leaf_index, leaf_address, counter, content), mac in zip(
                grouped, macs):
            total += self.verify_leaf(leaf_index, leaf_address, counter,
                                      content, _precomputed_mac=mac)
        return total

    def update_leaves(self, items: list[tuple[int, int, int, bytes]]) -> None:
        """Install many written-back leaves' MACs, deduplicating ancestors.

        ``items`` holds ``(leaf_index, leaf_address, counter, content)``
        tuples, regrouped as in :meth:`verify_leaves`.
        """
        grouped = self._grouped_by_parent(items)
        macs = self._batch_leaf_macs(grouped)
        for (leaf_index, leaf_address, counter, content), mac in zip(
                grouped, macs):
            self.update_leaf(leaf_index, leaf_address, counter, content,
                             _precomputed_mac=mac)

    def flush(self) -> None:
        """Write every dirty cached node back to DRAM (orderly shutdown).

        After a flush the root register authenticates the full DRAM image,
        so a cold restart (empty node cache) can verify everything.
        """
        # Repeatedly sweep: writing back level-l nodes dirties level l+1.
        while True:
            dirty = [(addr, line) for addr, line in
                     self.node_cache.dirty_blocks()]
            if not dirty:
                return
            # Lowest levels first so parents absorb updates before their turn.
            dirty.sort(key=lambda item: self._node_for_address(item[0])[0])
            address, line = dirty[0]
            line.dirty = False
            self._write_back_node(address, line.payload)

    # -- checkpoint support ------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable tree state (checkpointing must not race a write-back)."""
        if self._in_flight:
            raise RuntimeError(
                "cannot checkpoint a Merkle tree mid write-back"
            )
        return {
            "derivative": dict(self._derivative),
            "node_written": set(self._node_written),
            "root_register": self._root_register,
            "node_cache": self.node_cache.state_dict(),
            "stats": {
                "leaf_verifications": self.stats.leaf_verifications,
                "leaf_updates": self.stats.leaf_updates,
                "node_fetches": self.stats.node_fetches,
                "node_writebacks": self.stats.node_writebacks,
                "mac_computations": self.stats.mac_computations,
                "violations_detected": self.stats.violations_detected,
                "chain_lengths": dict(self.stats.chain_lengths),
            },
        }

    def load_state(self, state: dict) -> None:
        self._derivative = dict(state["derivative"])
        self._node_written = set(state["node_written"])
        self._root_register = bytes(state["root_register"])
        self._in_flight = {}
        self.node_cache.load_state(state["node_cache"])
        st = state["stats"]
        self.stats.leaf_verifications = st["leaf_verifications"]
        self.stats.leaf_updates = st["leaf_updates"]
        self.stats.node_fetches = st["node_fetches"]
        self.stats.node_writebacks = st["node_writebacks"]
        self.stats.mac_computations = st["mac_computations"]
        self.stats.violations_detected = st["violations_detected"]
        self.stats.chain_lengths = {
            int(k): v for k, v in st["chain_lengths"].items()
        }

    @property
    def root_register(self) -> bytes:
        """The on-chip root MAC (read-only from outside)."""
        return self._root_register
