"""Memory authentication: MAC schemes, Merkle tree, and strictness policies."""

from repro.auth.codes import (
    TreeGeometry,
    build_geometry,
    merkle_levels_for_memory,
)
from repro.auth.merkle import IntegrityViolation, MerkleStats, MerkleTree
from repro.auth.policies import (
    COMMIT_HIDE_CYCLES,
    AuthPolicy,
    exposed_auth_latency,
)
from repro.auth.schemes import GCMMACScheme, MACScheme, SHAMACScheme

__all__ = [
    "AuthPolicy",
    "COMMIT_HIDE_CYCLES",
    "GCMMACScheme",
    "IntegrityViolation",
    "MACScheme",
    "MerkleStats",
    "MerkleTree",
    "SHAMACScheme",
    "TreeGeometry",
    "build_geometry",
    "exposed_auth_latency",
    "merkle_levels_for_memory",
]
