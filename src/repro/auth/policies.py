"""Authentication strictness policies: Lazy, Commit, and Safe.

Figure 8 evaluates three points on the security/performance spectrum:

* **Lazy** — execution continues without waiting for authentication; checks
  complete in the background.  Cheapest, but attacks can take effect before
  detection (the security flaw Shi et al. point out for log-hash schemes).
* **Commit** — a load that missed in the data cache may execute
  speculatively, but cannot *retire* until its data is authenticated.
  Misspeculation on tampered data is squashed before becoming
  architecturally visible.
* **Safe** — a missing load stalls until the fetched data has fully
  authenticated; tainted data never enters the pipeline at all.

In the timing model the policy decides how much of the authentication
completion time (``auth_done``) is exposed on top of the data arrival time
(``data_ready``):

* Lazy exposes none of it.
* Safe exposes all of it.
* Commit exposes the tail that the out-of-order window cannot hide; the
  window's hiding capacity is a configurable number of cycles representing
  how long a completed-but-unretired load can wait in the ROB.
"""

from __future__ import annotations

import enum


class AuthPolicy(enum.Enum):
    """When instructions may proceed relative to authentication."""

    LAZY = "lazy"
    COMMIT = "commit"
    SAFE = "safe"


#: cycles of authentication latency the ROB can hide under Commit.  A
#: three-issue core with a ~128-entry window retiring ~1.5 IPC can keep a
#: completed load unretired for roughly window/IPC ≈ 85 cycles before the
#: ROB backs up; we round to 80 (one AES latency), which reproduces the
#: paper's ordering Lazy < Commit < Safe for both GCM and SHA.
COMMIT_HIDE_CYCLES = 80.0


def exposed_auth_latency(policy: AuthPolicy, data_ready: float,
                         auth_done: float,
                         commit_hide_cycles: float = COMMIT_HIDE_CYCLES) -> float:
    """Cycles the load's completion is delayed beyond data arrival.

    ``data_ready`` and ``auth_done`` are absolute cycle timestamps from the
    timing model.  The return value is how much later than ``data_ready``
    the load is allowed to (effectively) complete under the policy.
    """
    if auth_done <= data_ready:
        return 0.0
    gap = auth_done - data_ready
    if policy is AuthPolicy.LAZY:
        return 0.0
    if policy is AuthPolicy.COMMIT:
        return max(0.0, gap - commit_hide_cycles)
    return gap  # SAFE
