"""Arithmetic in GF(2^128) as used by the GHASH function.

GHASH (NIST SP 800-38D) multiplies 128-bit blocks in the finite field
GF(2^128) defined by the polynomial x^128 + x^7 + x^2 + x + 1.  The bit
ordering follows the GCM specification: the most significant bit of the
first byte is the coefficient of x^0 ("reflected" relative to the usual
integer convention).

The paper's hardware performs one such multiplication per cycle; this module
is its functional counterpart, used to compute real authentication tags in
the functional simulation layer and the attack experiments.
"""

from __future__ import annotations

import types

# x^128 + x^7 + x^2 + x + 1, expressed in the reflected bit order used by
# GCM: reducing by this constant corresponds to the standard polynomial.
_R = 0xE1000000000000000000000000000000


def block_to_int(block: bytes) -> int:
    """Interpret a 16-byte block as a GF(2^128) element (GCM bit order)."""
    if len(block) != 16:
        raise ValueError("GF(2^128) elements are 16 bytes")
    return int.from_bytes(block, "big")


def int_to_block(value: int) -> bytes:
    """Convert a field element back to its 16-byte representation."""
    return value.to_bytes(16, "big")


def gf128_mul(x: int, y: int) -> int:
    """Multiply two GF(2^128) elements in GCM bit order.

    This is the textbook shift-and-add algorithm from SP 800-38D
    section 6.3: iterate over the bits of ``x`` from most significant to
    least, conditionally accumulating ``v`` (which starts at ``y`` and is
    multiplied by x each step, reducing with R when the low bit falls off).
    """
    z = 0
    v = y
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


# -- table-driven multiplication by a fixed element ---------------------------
#
# GHASH multiplies every chunk by the same hash subkey H, so the classic
# Shoup trick applies: precompute, for each of the 16 byte positions i and
# each byte value b, the product (b << 8*(15-i)) * H.  A full multiply is
# then 16 table lookups and 15 XORs instead of 128 shift-and-add steps.
# The per-key table costs 16*256 entries (~1 ms to build) and is cached by
# the GHASH layer, so it is paid once per hash subkey per process.


def _mulx(v: int) -> int:
    """Multiply a field element by x (one right shift in GCM bit order)."""
    return (v >> 1) ^ _R if v & 1 else v >> 1


def _build_red8() -> list[int]:
    """Reduction residues of the 8 bits dropped by a one-byte right shift.

    For any element ``v``: ``v * x^8 == (v >> 8) ^ _RED8[v & 0xFF]`` — the
    high 120 bits shift through unreduced while the dropped low byte folds
    back in via the field polynomial.
    """
    table = [0] * 256
    for b in range(256):
        v = b
        for _ in range(8):
            v = _mulx(v)
        table[b] = v
    return table


_RED8 = _build_red8()


def _compile_table_mul():
    """Compile the unrolled 16-lookup multiply once; bind rows per key."""
    params = ["x"] + [f"T{i}=None" for i in range(16)]
    terms = " ^ ".join(f"T{i}[b[{i}]]" for i in range(16))
    src = (f"def _table_mul({', '.join(params)}):\n"
           f"    b = x.to_bytes(16, 'big')\n"
           f"    return {terms}\n")
    namespace: dict = {}
    exec(src, namespace)  # noqa: S102 - static generated source
    fn = namespace["_table_mul"]
    return fn.__code__, fn.__globals__


_TABLE_MUL_CODE, _TABLE_MUL_GLOBALS = _compile_table_mul()


class GF128Table:
    """Precomputed multiply-by-H tables (Shoup's method, 8-bit windows).

    ``multiply`` is a plain function attribute taking one field element and
    returning ``element * H``; it is stamped from a shared code object with
    the sixteen per-byte-position rows bound as argument defaults.
    """

    __slots__ = ("value", "multiply")

    def __init__(self, h: int | bytes):
        if isinstance(h, bytes):
            h = block_to_int(h)
        if not 0 <= h < (1 << 128):
            raise ValueError("value out of range for GF(2^128)")
        self.value = h
        # Products of H with each single-bit byte placed in the most
        # significant byte position: byte bit 7 is the coefficient of x^0,
        # bit k the coefficient of x^(7-k).
        powers = [h]
        for _ in range(7):
            powers.append(_mulx(powers[-1]))
        single = {1 << k: powers[7 - k] for k in range(8)}
        row = [0] * 256
        for b in range(1, 256):
            low = b & -b
            row[b] = row[b ^ low] ^ single[low]
        rows = [row]
        red8 = _RED8
        for _ in range(15):
            prev = rows[-1]
            rows.append([(v >> 8) ^ red8[v & 0xFF] for v in prev])
        self.multiply = types.FunctionType(
            _TABLE_MUL_CODE, _TABLE_MUL_GLOBALS, "_table_mul", tuple(rows)
        )


class GF128Element:
    """Convenience wrapper for field elements with operator overloading."""

    __slots__ = ("value",)

    def __init__(self, value: int | bytes):
        if isinstance(value, bytes):
            value = block_to_int(value)
        if not 0 <= value < (1 << 128):
            raise ValueError("value out of range for GF(2^128)")
        self.value = value

    def __add__(self, other: "GF128Element") -> "GF128Element":
        return GF128Element(self.value ^ other.value)

    __sub__ = __add__  # characteristic 2: addition is subtraction

    def __mul__(self, other: "GF128Element") -> "GF128Element":
        return GF128Element(gf128_mul(self.value, other.value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF128Element) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"GF128Element(0x{self.value:032x})"

    def to_bytes(self) -> bytes:
        return int_to_block(self.value)
