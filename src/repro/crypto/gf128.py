"""Arithmetic in GF(2^128) as used by the GHASH function.

GHASH (NIST SP 800-38D) multiplies 128-bit blocks in the finite field
GF(2^128) defined by the polynomial x^128 + x^7 + x^2 + x + 1.  The bit
ordering follows the GCM specification: the most significant bit of the
first byte is the coefficient of x^0 ("reflected" relative to the usual
integer convention).

The paper's hardware performs one such multiplication per cycle; this module
is its functional counterpart, used to compute real authentication tags in
the functional simulation layer and the attack experiments.
"""

from __future__ import annotations

# x^128 + x^7 + x^2 + x + 1, expressed in the reflected bit order used by
# GCM: reducing by this constant corresponds to the standard polynomial.
_R = 0xE1000000000000000000000000000000


def block_to_int(block: bytes) -> int:
    """Interpret a 16-byte block as a GF(2^128) element (GCM bit order)."""
    if len(block) != 16:
        raise ValueError("GF(2^128) elements are 16 bytes")
    return int.from_bytes(block, "big")


def int_to_block(value: int) -> bytes:
    """Convert a field element back to its 16-byte representation."""
    return value.to_bytes(16, "big")


def gf128_mul(x: int, y: int) -> int:
    """Multiply two GF(2^128) elements in GCM bit order.

    This is the textbook shift-and-add algorithm from SP 800-38D
    section 6.3: iterate over the bits of ``x`` from most significant to
    least, conditionally accumulating ``v`` (which starts at ``y`` and is
    multiplied by x each step, reducing with R when the low bit falls off).
    """
    z = 0
    v = y
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class GF128Element:
    """Convenience wrapper for field elements with operator overloading."""

    __slots__ = ("value",)

    def __init__(self, value: int | bytes):
        if isinstance(value, bytes):
            value = block_to_int(value)
        if not 0 <= value < (1 << 128):
            raise ValueError("value out of range for GF(2^128)")
        self.value = value

    def __add__(self, other: "GF128Element") -> "GF128Element":
        return GF128Element(self.value ^ other.value)

    __sub__ = __add__  # characteristic 2: addition is subtraction

    def __mul__(self, other: "GF128Element") -> "GF128Element":
        return GF128Element(gf128_mul(self.value, other.value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF128Element) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"GF128Element(0x{self.value:032x})"

    def to_bytes(self) -> bytes:
        return int_to_block(self.value)
