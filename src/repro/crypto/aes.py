"""AES-128 block cipher (FIPS-197), implemented from scratch.

This module provides the functional encryption substrate for the secure
memory system.  Two implementations coexist:

* A **table-driven kernel** — the hot path.  SubBytes, ShiftRows, and
  MixColumns are folded into precomputed lookup tables (the classic
  "T-table" construction, widened here to 16-bit *pair* tables so one round
  is eight lookups and eight XORs over the whole 128-bit state held as a
  Python int).  The round function is fully unrolled.  Pair tables are
  built lazily on first cipher use so that importing the module (or running
  the timing simulator, which never touches functional crypto) stays cheap.

* A **scalar reference** — the original per-byte round loops, kept as
  ``encrypt_block_scalar`` / ``decrypt_block_scalar``.  The test suite
  cross-checks the table kernel against it, and the micro-benchmarks use it
  as the before/after baseline.

Bulk entry points (:meth:`AES128.encrypt_blocks`, :func:`encrypt_blocks`)
amortize the key schedule, round-key unpacking, and Python dispatch across
many blocks; the batched secure-memory paths route all pad generation
through them.

Only the 128-bit key size is implemented because the paper's hardware engine
is a 128-bit AES pipeline.  Both the forward cipher (used for pad generation
in counter mode and for direct encryption) and the inverse cipher (needed
only by direct encryption) are provided.
"""

from __future__ import annotations

import struct
import types
from typing import Iterable, Sequence

BLOCK_SIZE = 16
KEY_SIZE = 16
NUM_ROUNDS = 10


def _build_sbox() -> tuple[list[int], list[int]]:
    """Derive the AES S-box and its inverse from GF(2^8) arithmetic."""
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = exp[255 - log[value]] if value else 0
        # Affine transformation over GF(2): b'_i = b_i ^ b_{i+4} ^ b_{i+5}
        # ^ b_{i+6} ^ b_{i+7} ^ c_i with c = 0x63 (FIPS-197 section 5.1.1).
        res = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            res |= b << bit
        sbox[value] = res
    for value in range(256):
        inv_sbox[sbox[value]] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()


def _xtime(value: int) -> int:
    """Multiply by x (0x02) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) with the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = [gf_mul(i, 2) for i in range(256)]
_MUL3 = [gf_mul(i, 3) for i in range(256)]
_MUL9 = [gf_mul(i, 9) for i in range(256)]
_MUL11 = [gf_mul(i, 11) for i in range(256)]
_MUL13 = [gf_mul(i, 13) for i in range(256)]
_MUL14 = [gf_mul(i, 14) for i in range(256)]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key: bytes) -> list[list[int]]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 4 * (NUM_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
    round_keys = []
    for r in range(NUM_ROUNDS + 1):
        rk = []
        for w in words[4 * r : 4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


# -- scalar reference transforms (the seed implementation) --------------------


def _sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


def _shift_rows(state: list[int]) -> list[int]:
    # state is column-major: state[4*c + r]
    return [
        state[0], state[5], state[10], state[15],
        state[4], state[9], state[14], state[3],
        state[8], state[13], state[2], state[7],
        state[12], state[1], state[6], state[11],
    ]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [
        state[0], state[13], state[10], state[7],
        state[4], state[1], state[14], state[11],
        state[8], state[5], state[2], state[15],
        state[12], state[9], state[6], state[3],
    ]


def _mix_columns(state: list[int]) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
        state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
        state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
        state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]


def _add_round_key(state: list[int], round_key: list[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


# -- table-driven kernel -----------------------------------------------------
#
# The 16-byte state is packed into one 128-bit int, big-endian, in the same
# column-major byte order as the scalar code (byte i = state[i] = column
# i//4, row i%4).  For the forward cipher, byte i of the round input routes
# through SubBytes, moves to column (c - r) mod 4 under ShiftRows, and
# spreads over that column's four rows under MixColumns; the entire
# per-byte contribution to the 128-bit round output is precomputed in
# _ENC_BYTE[i][b].  The inverse cipher uses the *equivalent inverse cipher*
# of FIPS-197 section 5.3.5 (InvSubBytes/InvShiftRows/InvMixColumns order
# with InvMixColumns applied to the middle round keys), giving the same
# one-lookup-per-byte structure via _DEC_BYTE[i][b].
#
# On first cipher use the byte tables are widened to pair tables indexed by
# 16-bit halves of the state (8 lookups + 8 XORs per round instead of 16)
# and the round function is generated fully unrolled.  The widening costs a
# few hundred milliseconds and ~30MB once per process, which is why it is
# deferred past import time.

_MC_COEFF = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
_IMC_COEFF = ((14, 11, 13, 9), (9, 14, 11, 13), (13, 9, 14, 11),
              (11, 13, 9, 14))


def _build_byte_tables() -> tuple[list, list, list, list]:
    enc = [[0] * 256 for _ in range(16)]
    enc_final = [[0] * 256 for _ in range(16)]
    dec = [[0] * 256 for _ in range(16)]
    dec_final = [[0] * 256 for _ in range(16)]
    for i in range(16):
        c_in, r = divmod(i, 4)
        c_enc = (c_in - r) % 4   # ShiftRows destination column
        c_dec = (c_in + r) % 4   # InvShiftRows destination column
        for b in range(256):
            s = SBOX[b]
            si = INV_SBOX[b]
            v_enc = 0
            v_dec = 0
            for r_out in range(4):
                v_enc |= gf_mul(s, _MC_COEFF[r_out][r]) << (
                    8 * (15 - (4 * c_enc + r_out))
                )
                v_dec |= gf_mul(si, _IMC_COEFF[r_out][r]) << (
                    8 * (15 - (4 * c_dec + r_out))
                )
            enc[i][b] = v_enc
            dec[i][b] = v_dec
            enc_final[i][b] = s << (8 * (15 - (4 * c_enc + r)))
            dec_final[i][b] = si << (8 * (15 - (4 * c_dec + r)))
    return enc, enc_final, dec, dec_final


_ENC_BYTE, _ENC_FINAL_BYTE, _DEC_BYTE, _DEC_FINAL_BYTE = _build_byte_tables()

_UNPACK_8H = struct.Struct(">8H").unpack


def _widen(byte_tables: list) -> list:
    """Combine adjacent byte tables into 65536-entry pair tables."""
    out = []
    for i in range(8):
        hi, lo = byte_tables[2 * i], byte_tables[2 * i + 1]
        out.append([hi[p >> 8] ^ lo[p & 255] for p in range(65536)])
    return out


def _compile_kernel_code():
    """Compile the fully-unrolled ten-round cipher, once.

    Every name the body uses — helper callables, the sixteen pair tables,
    and the eleven round-key words — is a *parameter with a default*, so
    per-key kernels are stamped out by rebinding ``__defaults__`` on the
    shared code object (no exec, no compile, and no per-call tuple unpack:
    the bound kernel takes the block as its sole argument and resolves
    everything else as a local).
    """
    params = ["block", "frombytes=None", "unpack=None"]
    params += [f"V{i}=None" for i in range(8)]
    params += [f"F{i}=None" for i in range(8)]
    params += [f"rk{r}=0" for r in range(NUM_ROUNDS + 1)]
    body = [f"def _rounds({', '.join(params)}):",
            "    s = frombytes(block, 'big') ^ rk0"]
    lookups = " ^ ".join(f"V{i}[p{i}]" for i in range(8))
    finals = " ^ ".join(f"F{i}[p{i}]" for i in range(8))
    for rnd in range(1, NUM_ROUNDS):
        body.append("    p0, p1, p2, p3, p4, p5, p6, p7 = "
                    "unpack(s.to_bytes(16, 'big'))")
        body.append(f"    s = rk{rnd} ^ {lookups}")
    body.append("    p0, p1, p2, p3, p4, p5, p6, p7 = "
                "unpack(s.to_bytes(16, 'big'))")
    body.append(f"    s = rk10 ^ {finals}")
    body.append("    return s.to_bytes(16, 'big')")
    namespace: dict = {}
    exec("\n".join(body), namespace)  # noqa: S102 - static generated source
    fn = namespace["_rounds"]
    return fn.__code__, fn.__globals__


_KERNEL_CODE, _KERNEL_GLOBALS = _compile_kernel_code()

# Pair tables for each direction, built lazily by _pair_tables().
_enc_pair: tuple[list, list] | None = None
_dec_pair: tuple[list, list] | None = None


def _pair_tables(encrypt: bool) -> tuple[list, list]:
    global _enc_pair, _dec_pair
    if encrypt:
        if _enc_pair is None:
            _enc_pair = (_widen(_ENC_BYTE), _widen(_ENC_FINAL_BYTE))
        return _enc_pair
    if _dec_pair is None:
        _dec_pair = (_widen(_DEC_BYTE), _widen(_DEC_FINAL_BYTE))
    return _dec_pair


def _bind_kernel(rk_words: tuple[int, ...], encrypt: bool):
    """Stamp a per-key single-argument round function from the shared code."""
    pair, pair_final = _pair_tables(encrypt)
    defaults = (int.from_bytes, _UNPACK_8H, *pair, *pair_final, *rk_words)
    return types.FunctionType(_KERNEL_CODE, _KERNEL_GLOBALS, "_rounds",
                              defaults)


class AES128:
    """AES-128 cipher bound to a single key.

    The key schedule is computed once at construction; ``encrypt_block`` and
    ``decrypt_block`` then operate on 16-byte blocks, and
    ``encrypt_blocks`` / ``decrypt_blocks`` amortize dispatch over many.
    """

    __slots__ = ("key", "_round_keys", "_rk_enc", "_rk_dec",
                 "_enc_kernel", "_dec_kernel")

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)
        self.key = bytes(key)
        self._enc_kernel = None
        self._dec_kernel = None
        self._rk_enc = tuple(
            int.from_bytes(bytes(rk), "big") for rk in self._round_keys
        )
        # Equivalent-inverse-cipher key schedule: reversed order, with
        # InvMixColumns applied to the nine middle round keys.
        dec_keys = [self._round_keys[NUM_ROUNDS]]
        for rnd in range(NUM_ROUNDS - 1, 0, -1):
            mixed = list(self._round_keys[rnd])
            _inv_mix_columns(mixed)
            dec_keys.append(mixed)
        dec_keys.append(self._round_keys[0])
        self._rk_dec = tuple(
            int.from_bytes(bytes(rk), "big") for rk in dec_keys
        )

    # -- table-driven hot path ------------------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        kernel = self._enc_kernel
        if kernel is None:
            kernel = self._enc_kernel = _bind_kernel(self._rk_enc, True)
        return kernel(plaintext)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        kernel = self._dec_kernel
        if kernel is None:
            kernel = self._dec_kernel = _bind_kernel(self._rk_dec, False)
        return kernel(ciphertext)

    def encrypt_blocks(self, blocks: Iterable[bytes]) -> list[bytes]:
        """Encrypt many 16-byte blocks, amortizing dispatch and key setup."""
        kernel = self._enc_kernel
        if kernel is None:
            kernel = self._enc_kernel = _bind_kernel(self._rk_enc, True)
        out = []
        for block in blocks:
            if len(block) != BLOCK_SIZE:
                raise ValueError(f"block must be {BLOCK_SIZE} bytes")
            out.append(kernel(block))
        return out

    def decrypt_blocks(self, blocks: Iterable[bytes]) -> list[bytes]:
        """Decrypt many 16-byte blocks, amortizing dispatch and key setup."""
        kernel = self._dec_kernel
        if kernel is None:
            kernel = self._dec_kernel = _bind_kernel(self._rk_dec, False)
        out = []
        for block in blocks:
            if len(block) != BLOCK_SIZE:
                raise ValueError(f"block must be {BLOCK_SIZE} bytes")
            out.append(kernel(block))
        return out

    # -- scalar reference (the seed implementation) ---------------------------

    def encrypt_block_scalar(self, plaintext: bytes) -> bytes:
        """Per-byte round-loop reference used for cross-checks and benches."""
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        state = list(plaintext)
        _add_round_key(state, self._round_keys[0])
        for rnd in range(1, NUM_ROUNDS):
            _sub_bytes(state)
            state = _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[rnd])
        _sub_bytes(state)
        state = _shift_rows(state)
        _add_round_key(state, self._round_keys[NUM_ROUNDS])
        return bytes(state)

    def decrypt_block_scalar(self, ciphertext: bytes) -> bytes:
        """Per-byte round-loop reference for the inverse cipher."""
        if len(ciphertext) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        state = list(ciphertext)
        _add_round_key(state, self._round_keys[NUM_ROUNDS])
        for rnd in range(NUM_ROUNDS - 1, 0, -1):
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[rnd])
            _inv_mix_columns(state)
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)


def encrypt_blocks(key: bytes, blocks: Sequence[bytes]) -> list[bytes]:
    """Encrypt many blocks under one key — the module-level bulk entry.

    Equivalent to ``[AES128(key).encrypt_block(b) for b in blocks]`` but
    performs the key schedule once and dispatches through the unrolled
    table kernel.
    """
    return AES128(key).encrypt_blocks(blocks)


def decrypt_blocks(key: bytes, blocks: Sequence[bytes]) -> list[bytes]:
    """Decrypt many blocks under one key (see :func:`encrypt_blocks`)."""
    return AES128(key).decrypt_blocks(blocks)
