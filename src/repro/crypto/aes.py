"""AES-128 block cipher (FIPS-197), implemented from scratch.

This module provides the functional encryption substrate for the secure
memory system.  It is a straightforward table-driven implementation: the
S-box is derived from the multiplicative inverse in GF(2^8) followed by the
affine transform, exactly as specified in FIPS-197, and round transforms
operate on a 16-byte state held as a flat list in column-major order.

Only the 128-bit key size is implemented because the paper's hardware engine
is a 128-bit AES pipeline.  Both the forward cipher (used for pad generation
in counter mode and for direct encryption) and the inverse cipher (needed
only by direct encryption) are provided.
"""

from __future__ import annotations

BLOCK_SIZE = 16
KEY_SIZE = 16
NUM_ROUNDS = 10


def _build_sbox() -> tuple[list[int], list[int]]:
    """Derive the AES S-box and its inverse from GF(2^8) arithmetic."""
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = exp[255 - log[value]] if value else 0
        # Affine transformation over GF(2): b'_i = b_i ^ b_{i+4} ^ b_{i+5}
        # ^ b_{i+6} ^ b_{i+7} ^ c_i with c = 0x63 (FIPS-197 section 5.1.1).
        res = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            res |= b << bit
        sbox[value] = res
    for value in range(256):
        inv_sbox[sbox[value]] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()


def _xtime(value: int) -> int:
    """Multiply by x (0x02) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) with the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = [gf_mul(i, 2) for i in range(256)]
_MUL3 = [gf_mul(i, 3) for i in range(256)]
_MUL9 = [gf_mul(i, 9) for i in range(256)]
_MUL11 = [gf_mul(i, 11) for i in range(256)]
_MUL13 = [gf_mul(i, 13) for i in range(256)]
_MUL14 = [gf_mul(i, 14) for i in range(256)]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key: bytes) -> list[list[int]]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 4 * (NUM_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
    round_keys = []
    for r in range(NUM_ROUNDS + 1):
        rk = []
        for w in words[4 * r : 4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


def _sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


def _shift_rows(state: list[int]) -> list[int]:
    # state is column-major: state[4*c + r]
    return [
        state[0], state[5], state[10], state[15],
        state[4], state[9], state[14], state[3],
        state[8], state[13], state[2], state[7],
        state[12], state[1], state[6], state[11],
    ]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [
        state[0], state[13], state[10], state[7],
        state[4], state[1], state[14], state[11],
        state[8], state[5], state[2], state[15],
        state[12], state[9], state[6], state[3],
    ]


def _mix_columns(state: list[int]) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
        state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
        state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
        state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]


def _add_round_key(state: list[int], round_key: list[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


class AES128:
    """AES-128 cipher bound to a single key.

    The key schedule is computed once at construction; ``encrypt_block`` and
    ``decrypt_block`` then operate on 16-byte blocks.
    """

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)
        self.key = bytes(key)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        state = list(plaintext)
        _add_round_key(state, self._round_keys[0])
        for rnd in range(1, NUM_ROUNDS):
            _sub_bytes(state)
            state = _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[rnd])
        _sub_bytes(state)
        state = _shift_rows(state)
        _add_round_key(state, self._round_keys[NUM_ROUNDS])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        state = list(ciphertext)
        _add_round_key(state, self._round_keys[NUM_ROUNDS])
        for rnd in range(NUM_ROUNDS - 1, 0, -1):
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[rnd])
            _inv_mix_columns(state)
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
