"""Counter-mode pad generation and seed construction for memory encryption.

The paper encrypts a 64-byte cache block as four 16-byte *encryption chunks*.
Each chunk's keystream pad is AES_K(seed) where the seed concatenates the
chunk's address, the block's counter value (major || minor for the split
scheme, or the monolithic/global counter value otherwise), and a constant
*encryption initialization vector* (EIV).  Decryption is the identical XOR.

Security rests on seed uniqueness: the address field separates locations and
the counter field separates successive write-backs of one location, so no
(seed, key) pair ever recurs — the fundamental counter-mode requirement.

Seed layout (16 bytes, big-endian fields):

    bytes  0-5   chunk address >> 4  (48 bits — chunk index in memory)
    bytes  6-13  counter value       (64 bits)
    bytes 14-15  IV tag              (16 bits of the EIV / AIV constant)

The IV tag domain-separates encryption pads from authentication pads so the
same (address, counter) never produces the same AES input for both purposes.
"""

from __future__ import annotations

from repro.crypto.aes import AES128

CHUNK_SIZE = 16

# Domain-separation constants: encryption IV and authentication IV.
ENCRYPTION_IV = 0x45E1  # "E"
AUTHENTICATION_IV = 0xA07A  # "A"


def make_seed(chunk_address: int, counter: int, iv_tag: int) -> bytes:
    """Build the 16-byte AES input for one chunk pad.

    ``chunk_address`` is the byte address of the 16-byte chunk;
    ``counter`` is the (possibly concatenated major||minor) counter value,
    truncated to 64 bits; ``iv_tag`` is ENCRYPTION_IV or AUTHENTICATION_IV.
    """
    if chunk_address % CHUNK_SIZE:
        raise ValueError("chunk address must be 16-byte aligned")
    chunk_index = (chunk_address // CHUNK_SIZE) & ((1 << 48) - 1)
    return (
        chunk_index.to_bytes(6, "big")
        + (counter & ((1 << 64) - 1)).to_bytes(8, "big")
        + (iv_tag & 0xFFFF).to_bytes(2, "big")
    )


def make_seeds(block_address: int, counter: int, num_chunks: int,
               iv_tag: int = ENCRYPTION_IV) -> list[bytes]:
    """Build the AES inputs for every chunk pad of one cache block."""
    return [
        make_seed(block_address + i * CHUNK_SIZE, counter, iv_tag)
        for i in range(num_chunks)
    ]


def generate_pads(aes: AES128, block_address: int, counter: int,
                  num_chunks: int, iv_tag: int = ENCRYPTION_IV) -> list[bytes]:
    """Generate the keystream pads for every chunk of a cache block."""
    return aes.encrypt_blocks(
        make_seeds(block_address, counter, num_chunks, iv_tag)
    )


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal lengths")
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


def ctr_transform(aes: AES128, block_address: int, counter: int,
                  data: bytes, iv_tag: int = ENCRYPTION_IV) -> bytes:
    """Encrypt or decrypt a cache block in counter mode (self-inverse)."""
    if len(data) % CHUNK_SIZE:
        raise ValueError("data must be a whole number of 16-byte chunks")
    num_chunks = len(data) // CHUNK_SIZE
    pads = generate_pads(aes, block_address, counter, num_chunks, iv_tag)
    return xor_bytes(data, b"".join(pads))


def bulk_ctr_transform(aes: AES128, items: list[tuple[int, int, bytes]],
                       iv_tag: int = ENCRYPTION_IV,
                       kernel: str = "table") -> list[bytes]:
    """Counter-mode transform many cache blocks with one AES dispatch.

    ``items`` is a list of ``(block_address, counter, data)``; the result
    preserves order.  All chunk seeds across the whole batch are generated
    first and encrypted in a single batch call — the software analogue of
    the paper's multi-engine pad pipeline.  ``kernel`` selects the AES
    backend (``"scalar"``, ``"table"``, or ``"vector"``); all three are
    byte-identical, differing only in throughput.
    """
    if kernel == "vector":
        from repro.crypto import vector as _vector

        if _vector.HAVE_NUMPY:
            total_chunks = sum(len(data) // CHUNK_SIZE for _, _, data in items)
            if total_chunks >= _vector.VECTOR_MIN_BLOCKS:
                return _vector.bulk_ctr_transform_vector(aes.key, items, iv_tag)
    seeds: list[bytes] = []
    spans: list[tuple[int, int]] = []
    for block_address, counter, data in items:
        if len(data) % CHUNK_SIZE:
            raise ValueError("data must be a whole number of 16-byte chunks")
        num_chunks = len(data) // CHUNK_SIZE
        spans.append((len(seeds), num_chunks))
        seeds.extend(make_seeds(block_address, counter, num_chunks, iv_tag))
    if kernel == "scalar":
        pads = [aes.encrypt_block_scalar(seed) for seed in seeds]
    else:
        pads = aes.encrypt_blocks(seeds)
    out = []
    for (start, count), (_, _, data) in zip(spans, items):
        out.append(xor_bytes(data, b"".join(pads[start:start + count])))
    return out
