"""GHASH universal hash function from NIST SP 800-38D.

GHASH_H(A, C) hashes the additional authenticated data A and the ciphertext
C under the hash subkey H = AES_K(0^128).  In the paper's memory
authentication setting the additional-data input is unused (Figure 2), so
the common call is ``ghash(h, b"", ciphertext)``.

The chain structure — one GF(2^128) multiply and one XOR per 16-byte chunk —
is exactly what the hardware GHASH unit evaluates in one cycle per chunk,
which is why GCM authentication latency is dominated by the (overlappable)
AES pad generation rather than the hash itself.

Every multiplication in the chain is by the same subkey H, so the hot path
runs on a per-key :class:`~repro.crypto.gf128.GF128Table` (Shoup's 8-bit
table method: 16 lookups per multiply instead of 128 shift-and-add steps).
Tables are cached per subkey — construct a :class:`GHASH` object to hold
one explicitly, or call the module functions, which share a bounded cache.
"""

from __future__ import annotations

from repro.crypto.gf128 import GF128Table, block_to_int, int_to_block

# Subkey -> GF128Table.  One entry per distinct hash subkey seen; bounded
# defensively so pathological callers (e.g. key-sweep tests) cannot grow it
# without limit.  A full reset on overflow is fine: rebuild costs ~1 ms.
_TABLE_CACHE: dict[bytes, GF128Table] = {}
_TABLE_CACHE_MAX = 64


def _table_for(h: bytes) -> GF128Table:
    table = _TABLE_CACHE.get(h)
    if table is None:
        if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
            _TABLE_CACHE.clear()
        table = _TABLE_CACHE[h] = GF128Table(block_to_int(h))
    return table


def _pad16(data: bytes) -> bytes:
    """Zero-pad to a multiple of 16 bytes (no-op when already aligned)."""
    remainder = len(data) % 16
    if remainder:
        return data + b"\x00" * (16 - remainder)
    return data


class GHASH:
    """GHASH bound to one hash subkey, holding its multiplication table."""

    __slots__ = ("h", "_table")

    def __init__(self, h: bytes):
        self.h = bytes(h)
        self._table = _table_for(self.h)

    def hash_chunks(self, chunks: list[bytes]) -> bytes:
        """GHASH over pre-split 16-byte chunks without a length block."""
        mul = self._table.multiply
        y = 0
        for chunk in chunks:
            if len(chunk) != 16:
                raise ValueError("GHASH chunks must be 16 bytes")
            y = mul(y ^ int.from_bytes(chunk, "big"))
        return int_to_block(y)

    def __call__(self, aad: bytes, ciphertext: bytes) -> bytes:
        """Full GHASH_H(aad, ciphertext) per SP 800-38D section 6.4."""
        mul = self._table.multiply
        y = 0
        for data in (_pad16(aad), _pad16(ciphertext)):
            for offset in range(0, len(data), 16):
                y = mul(y ^ int.from_bytes(data[offset:offset + 16], "big"))
        length_block = (len(aad) * 8) << 64 | (len(ciphertext) * 8)
        y = mul(y ^ length_block)
        return int_to_block(y)


def ghash(h: bytes, aad: bytes, ciphertext: bytes) -> bytes:
    """Compute GHASH_H(aad, ciphertext) per SP 800-38D section 6.4.

    ``h`` is the 16-byte hash subkey.  Returns the 16-byte hash.
    """
    mul = _table_for(h).multiply
    frombytes = int.from_bytes
    y = 0
    for data in ((aad, ciphertext) if aad else (ciphertext,)):
        data = _pad16(data)
        for offset in range(0, len(data), 16):
            y = mul(y ^ frombytes(data[offset:offset + 16], "big"))
    length_block = (len(aad) * 8) << 64 | (len(ciphertext) * 8)
    return int_to_block(mul(y ^ length_block))


def ghash_chunks(h: bytes, chunks: list[bytes]) -> bytes:
    """GHASH over pre-split 16-byte chunks without a length block.

    This matches the memory-authentication datapath in Figure 2 of the
    paper, where the hashed message is always a fixed-size cache block (so
    no length encoding is needed) and there is no additional authenticated
    data.  Each step is ``y = (y XOR chunk) * H``.
    """
    mul = _table_for(h).multiply
    frombytes = int.from_bytes
    y = 0
    for chunk in chunks:
        if len(chunk) != 16:
            raise ValueError("GHASH chunks must be 16 bytes")
        y = mul(y ^ frombytes(chunk, "big"))
    return int_to_block(y)
