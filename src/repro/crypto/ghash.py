"""GHASH universal hash function from NIST SP 800-38D.

GHASH_H(A, C) hashes the additional authenticated data A and the ciphertext
C under the hash subkey H = AES_K(0^128).  In the paper's memory
authentication setting the additional-data input is unused (Figure 2), so
the common call is ``ghash(h, b"", ciphertext)``.

The chain structure — one GF(2^128) multiply and one XOR per 16-byte chunk —
is exactly what the hardware GHASH unit evaluates in one cycle per chunk,
which is why GCM authentication latency is dominated by the (overlappable)
AES pad generation rather than the hash itself.
"""

from __future__ import annotations

from repro.crypto.gf128 import block_to_int, gf128_mul, int_to_block


def _pad16(data: bytes) -> bytes:
    """Zero-pad to a multiple of 16 bytes (no-op when already aligned)."""
    remainder = len(data) % 16
    if remainder:
        return data + b"\x00" * (16 - remainder)
    return data


def ghash(h: bytes, aad: bytes, ciphertext: bytes) -> bytes:
    """Compute GHASH_H(aad, ciphertext) per SP 800-38D section 6.4.

    ``h`` is the 16-byte hash subkey.  Returns the 16-byte hash.
    """
    h_int = block_to_int(h)
    y = 0
    for data in (_pad16(aad), _pad16(ciphertext)):
        for offset in range(0, len(data), 16):
            y = gf128_mul(y ^ block_to_int(data[offset : offset + 16]), h_int)
    # Final length block: 64-bit bit-lengths of A and C concatenated.
    length_block = (len(aad) * 8).to_bytes(8, "big") + (
        len(ciphertext) * 8
    ).to_bytes(8, "big")
    y = gf128_mul(y ^ block_to_int(length_block), h_int)
    return int_to_block(y)


def ghash_chunks(h: bytes, chunks: list[bytes]) -> bytes:
    """GHASH over pre-split 16-byte chunks without a length block.

    This matches the memory-authentication datapath in Figure 2 of the
    paper, where the hashed message is always a fixed-size cache block (so
    no length encoding is needed) and there is no additional authenticated
    data.  Each step is ``y = (y XOR chunk) * H``.
    """
    h_int = block_to_int(h)
    y = 0
    for chunk in chunks:
        if len(chunk) != 16:
            raise ValueError("GHASH chunks must be 16 bytes")
        y = gf128_mul(y ^ block_to_int(chunk), h_int)
    return int_to_block(y)
