"""SHA-1 (FIPS 180-1) and HMAC-SHA1, implemented from scratch.

SHA-1 is the authentication baseline throughout the paper's evaluation
(Figures 7-10): prior secure-memory proposals used SHA-1 or MD-5 MACs whose
300ns-plus hardware latency sits on the critical path of every timely
authentication.  The functional layer uses this implementation to compute
real Merkle-tree MACs for the SHA-based baseline configurations.
"""

from __future__ import annotations

import struct

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def _compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    w = list(struct.unpack(">16I", block))
    for t in range(16, 80):
        w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
    a, b, c, d, e = state
    for t in range(80):
        if t < 20:
            f = (b & c) | (~b & d)
            k = 0x5A827999
        elif t < 40:
            f = b ^ c ^ d
            k = 0x6ED9EBA1
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
            k = 0x8F1BBCDC
        else:
            f = b ^ c ^ d
            k = 0xCA62C1D6
        temp = (_rotl(a, 5) + f + e + k + w[t]) & 0xFFFFFFFF
        e, d, c, b, a = d, c, _rotl(b, 30), a, temp
    return tuple(
        (s + v) & 0xFFFFFFFF for s, v in zip(state, (a, b, c, d, e))
    )


def sha1(message: bytes) -> bytes:
    """Compute the 20-byte SHA-1 digest of ``message``."""
    length = len(message)
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded)) % 64)
    padded += struct.pack(">Q", length * 8)
    state = _H0
    for offset in range(0, len(padded), 64):
        state = _compress(state, padded[offset : offset + 64])
    return struct.pack(">5I", *state)


_BLOCK = 64
_IPAD = bytes(0x36 for _ in range(_BLOCK))
_OPAD = bytes(0x5C for _ in range(_BLOCK))


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1 (RFC 2104): keyed MACs for the SHA-based baselines."""
    if len(key) > _BLOCK:
        key = sha1(key)
    key = key + b"\x00" * (_BLOCK - len(key))
    inner = sha1(bytes(k ^ p for k, p in zip(key, _IPAD)) + message)
    return sha1(bytes(k ^ p for k, p in zip(key, _OPAD)) + inner)
