"""NumPy-vectorized bulk crypto kernels — the batch hot path.

The table-driven kernels in :mod:`repro.crypto.aes` and
:mod:`repro.crypto.gf128` made *single-block* operations fast; this module
makes *batches* fast.  The paper's hardware argument is that pad generation
and GHASH are embarrassingly parallel across blocks (a multi-engine AES
pipeline, one GF(2^128) multiply per cycle), and the software analogue is
the same computation expressed as NumPy array programs:

* **AES-128** — the batch state is an ``(N, 16)`` uint8 array in the same
  column-major byte order as the scalar kernel.  SubBytes is one fancy-index
  gather through the S-box, ShiftRows a fixed column permutation, and
  MixColumns eight xtime-table gathers plus XORs per round, all over the
  whole batch at once.  The key schedule is computed once per key and
  broadcast.
* **GHASH** — Shoup's 8-bit-window method vectorized: the per-subkey table
  becomes two ``(16, 256)`` uint64 arrays (high/low halves of each 128-bit
  product), and one chain step for N lanes is 32 gathers plus XOR
  reductions.  Lanes advance in lockstep, so a batch of same-length
  messages (the leaf-MAC case: every message is one cache block) costs one
  chain, not N.
* **Leaf MACs / CTR pads** — compositions of the two, with the per-chunk
  seeds themselves built as array programs.

Everything here is *bit-identical* to the table and scalar kernels — the
Hypothesis suite in ``tests/crypto/test_vector_equivalence.py`` and the
fuzz harness's differential oracle prove it on every run.  Callers select a
kernel through the ``kernel=`` arguments (or ``Config.kernel``); the
dispatch helpers fall back to the table kernel automatically when NumPy is
unavailable or the batch is too small to amortize array overhead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.aes import (
    AES128,
    INV_SBOX,
    NUM_ROUNDS,
    SBOX,
    _inv_mix_columns,
    _MUL2,
    _MUL3,
    _MUL9,
    _MUL11,
    _MUL13,
    _MUL14,
    expand_key,
)
from repro.crypto.ctr import AUTHENTICATION_IV, CHUNK_SIZE, ENCRYPTION_IV
from repro.crypto.gf128 import _mulx, _RED8, block_to_int, gf128_mul
from repro.crypto.ghash import ghash_chunks

try:  # the container bakes numpy in, but the kernels degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via resolve_kernel tests
    _np = None

HAVE_NUMPY = _np is not None

#: kernel names accepted by the dispatch helpers and ``Config.kernel``
KERNELS = ("scalar", "table", "vector")

#: below this many 16-byte blocks the per-call array overhead outweighs the
#: vector win and the dispatchers silently use the table kernel instead
VECTOR_MIN_BLOCKS = 8

_MASK48 = (1 << 48) - 1
_MASK64 = (1 << 64) - 1


def resolve_kernel(name: str) -> str:
    """Map a requested kernel (or ``"auto"``) to the one that will run.

    ``"auto"`` picks ``"vector"`` when NumPy is importable and ``"table"``
    otherwise; an explicit ``"vector"`` request also falls back to
    ``"table"`` without NumPy (the two are proven byte-identical, so the
    fallback is silent).  Unknown names raise :class:`ValueError`.
    """
    if name == "auto":
        return "vector" if HAVE_NUMPY else "table"
    if name not in KERNELS:
        raise ValueError(
            f"kernel must be 'auto' or one of {KERNELS}, got {name!r}"
        )
    if name == "vector" and not HAVE_NUMPY:
        return "table"
    return name


# -- numpy lookup tables (tiny; built eagerly at import) ----------------------

if HAVE_NUMPY:
    _SBOX_NP = _np.array(SBOX, dtype=_np.uint8)
    _INV_SBOX_NP = _np.array(INV_SBOX, dtype=_np.uint8)
    _MUL2_NP = _np.array(_MUL2, dtype=_np.uint8)
    _MUL3_NP = _np.array(_MUL3, dtype=_np.uint8)
    _MUL9_NP = _np.array(_MUL9, dtype=_np.uint8)
    _MUL11_NP = _np.array(_MUL11, dtype=_np.uint8)
    _MUL13_NP = _np.array(_MUL13, dtype=_np.uint8)
    _MUL14_NP = _np.array(_MUL14, dtype=_np.uint8)
    # ShiftRows / InvShiftRows as column permutations of the flat state
    # (byte i = column i//4, row i%4 — identical to the scalar kernel).
    _SHIFT_NP = _np.array(
        [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11],
        dtype=_np.intp,
    )
    _INV_SHIFT_NP = _np.array(
        [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3],
        dtype=_np.intp,
    )


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the vector kernel requires numpy; use resolve_kernel() / the "
            "kernel dispatch helpers for automatic table fallback"
        )


def _blocks_to_array(blocks) -> "_np.ndarray":
    """Pack 16-byte blocks into an ``(N, 16)`` uint8 array."""
    if isinstance(blocks, _np.ndarray):
        if blocks.ndim != 2 or blocks.shape[1] != 16:
            raise ValueError("block array must have shape (N, 16)")
        return blocks.astype(_np.uint8, copy=False)
    joined = b"".join(blocks)
    if len(joined) % 16:
        raise ValueError("blocks must all be 16 bytes")
    return _np.frombuffer(joined, dtype=_np.uint8).reshape(-1, 16)


def _array_to_blocks(arr: "_np.ndarray") -> list[bytes]:
    flat = arr.tobytes()
    return [flat[i:i + 16] for i in range(0, len(flat), 16)]


# -- vectorized AES-128 -------------------------------------------------------


class VectorAES128:
    """AES-128 over ``(N, 16)`` uint8 batch states, bound to one key.

    Byte-identical to :class:`repro.crypto.aes.AES128`: same column-major
    state order, same (equivalent-inverse-cipher) decryption key schedule.
    Construction costs one key expansion; per-batch work is ten rounds of
    whole-array gathers and XORs.
    """

    __slots__ = ("key", "_rk_enc", "_rk_dec")

    def __init__(self, key: bytes):
        _require_numpy()
        round_keys = expand_key(key)
        self.key = bytes(key)
        self._rk_enc = _np.array(round_keys, dtype=_np.uint8)
        # Equivalent inverse cipher: reversed round keys with InvMixColumns
        # applied to the nine middle ones (FIPS-197 section 5.3.5).
        dec_keys = [round_keys[NUM_ROUNDS]]
        for rnd in range(NUM_ROUNDS - 1, 0, -1):
            mixed = list(round_keys[rnd])
            _inv_mix_columns(mixed)
            dec_keys.append(mixed)
        dec_keys.append(round_keys[0])
        self._rk_dec = _np.array(dec_keys, dtype=_np.uint8)

    # The MixColumns matrix rows are cyclic shifts of (2 3 1 1), so one
    # round's column mix is eight gathers (xtime and xtime^3 of each input
    # row) plus twelve XORs over the whole batch.

    @staticmethod
    def _mix_columns(cols: "_np.ndarray") -> "_np.ndarray":
        a0 = cols[:, :, 0]
        a1 = cols[:, :, 1]
        a2 = cols[:, :, 2]
        a3 = cols[:, :, 3]
        m0 = _MUL2_NP[a0]
        m1 = _MUL2_NP[a1]
        m2 = _MUL2_NP[a2]
        m3 = _MUL2_NP[a3]
        n0 = _MUL3_NP[a0]
        n1 = _MUL3_NP[a1]
        n2 = _MUL3_NP[a2]
        n3 = _MUL3_NP[a3]
        out = _np.empty_like(cols)
        out[:, :, 0] = m0 ^ n1 ^ a2 ^ a3
        out[:, :, 1] = a0 ^ m1 ^ n2 ^ a3
        out[:, :, 2] = a0 ^ a1 ^ m2 ^ n3
        out[:, :, 3] = n0 ^ a1 ^ a2 ^ m3
        return out

    @staticmethod
    def _inv_mix_columns(cols: "_np.ndarray") -> "_np.ndarray":
        a0 = cols[:, :, 0]
        a1 = cols[:, :, 1]
        a2 = cols[:, :, 2]
        a3 = cols[:, :, 3]
        out = _np.empty_like(cols)
        out[:, :, 0] = (_MUL14_NP[a0] ^ _MUL11_NP[a1]
                        ^ _MUL13_NP[a2] ^ _MUL9_NP[a3])
        out[:, :, 1] = (_MUL9_NP[a0] ^ _MUL14_NP[a1]
                        ^ _MUL11_NP[a2] ^ _MUL13_NP[a3])
        out[:, :, 2] = (_MUL13_NP[a0] ^ _MUL9_NP[a1]
                        ^ _MUL14_NP[a2] ^ _MUL11_NP[a3])
        out[:, :, 3] = (_MUL11_NP[a0] ^ _MUL13_NP[a1]
                        ^ _MUL9_NP[a2] ^ _MUL14_NP[a3])
        return out

    def encrypt_array(self, state: "_np.ndarray") -> "_np.ndarray":
        """Encrypt an ``(N, 16)`` uint8 batch; returns a new array."""
        rk = self._rk_enc
        s = state ^ rk[0]
        for rnd in range(1, NUM_ROUNDS):
            s = _SBOX_NP[s][:, _SHIFT_NP]
            s = self._mix_columns(s.reshape(-1, 4, 4)).reshape(-1, 16)
            s ^= rk[rnd]
        s = _SBOX_NP[s][:, _SHIFT_NP]
        return s ^ rk[NUM_ROUNDS]

    def decrypt_array(self, state: "_np.ndarray") -> "_np.ndarray":
        """Decrypt an ``(N, 16)`` uint8 batch (equivalent inverse cipher)."""
        rk = self._rk_dec
        s = state ^ rk[0]
        for rnd in range(1, NUM_ROUNDS):
            s = _INV_SBOX_NP[s][:, _INV_SHIFT_NP]
            s = self._inv_mix_columns(s.reshape(-1, 4, 4)).reshape(-1, 16)
            s ^= rk[rnd]
        s = _INV_SBOX_NP[s][:, _INV_SHIFT_NP]
        return s ^ rk[NUM_ROUNDS]

    def encrypt_blocks(self, blocks) -> list[bytes]:
        """Encrypt many 16-byte blocks in one batch."""
        arr = _blocks_to_array(blocks)
        if arr.shape[0] == 0:
            return []
        return _array_to_blocks(self.encrypt_array(arr))

    def decrypt_blocks(self, blocks) -> list[bytes]:
        """Decrypt many 16-byte blocks in one batch."""
        arr = _blocks_to_array(blocks)
        if arr.shape[0] == 0:
            return []
        return _array_to_blocks(self.decrypt_array(arr))


# Per-key instance caches, bounded like the GHASH table cache: a full reset
# on overflow is fine (rebuild = one key expansion / one 8 KB table pair).
_VECTOR_AES_CACHE: dict[bytes, VectorAES128] = {}
_VECTOR_GHASH_CACHE: dict[bytes, "VectorGHASH"] = {}
_CACHE_MAX = 64


def vector_aes(key: bytes) -> VectorAES128:
    """Per-key :class:`VectorAES128`, cached across calls."""
    key = bytes(key)
    cipher = _VECTOR_AES_CACHE.get(key)
    if cipher is None:
        if len(_VECTOR_AES_CACHE) >= _CACHE_MAX:
            _VECTOR_AES_CACHE.clear()
        cipher = _VECTOR_AES_CACHE[key] = VectorAES128(key)
    return cipher


# -- vectorized GHASH ---------------------------------------------------------


class VectorGHASH:
    """Batched multiply-by-H chains for one GHASH subkey.

    Shoup's 8-bit-window tables, stored as two ``(16, 256)`` uint64 arrays
    (high/low halves of each precomputed 128-bit product).  One chain step
    for the whole batch is: XOR the incoming chunks into the running
    digests, gather the 32 half-products per byte position, XOR-reduce.
    """

    __slots__ = ("h", "_th", "_tl")

    def __init__(self, h: bytes):
        _require_numpy()
        self.h = bytes(h)
        hval = block_to_int(self.h)
        # Same row construction as GF128Table (kept independent so the two
        # implementations cross-check each other rather than sharing bugs).
        powers = [hval]
        for _ in range(7):
            powers.append(_mulx(powers[-1]))
        single = {1 << k: powers[7 - k] for k in range(8)}
        row = [0] * 256
        for b in range(1, 256):
            low = b & -b
            row[b] = row[b ^ low] ^ single[low]
        rows = [row]
        for _ in range(15):
            prev = rows[-1]
            rows.append([(v >> 8) ^ _RED8[v & 0xFF] for v in prev])
        self._th = _np.array([[v >> 64 for v in r] for r in rows],
                             dtype=_np.uint64)
        self._tl = _np.array([[v & _MASK64 for v in r] for r in rows],
                             dtype=_np.uint64)

    def chain(self, chunks: "_np.ndarray") -> "_np.ndarray":
        """Run ``y = (y ^ chunk) * H`` over an ``(N, m, 16)`` chunk array.

        Returns the ``(N, 16)`` uint8 digests.  All lanes advance in
        lockstep, which is why callers group messages by chunk count.
        """
        n, m, _ = chunks.shape
        th, tl = self._th, self._tl
        y = _np.zeros((n, 16), dtype=_np.uint8)
        packed = _np.empty((n, 2), dtype=">u8")
        for j in range(m):
            # ``x`` materializes before ``packed`` (which ``y`` views) is
            # overwritten, so reusing the buffer across chunks is safe and
            # avoids an (n, 16) copy per chain step.
            x = y ^ chunks[:, j, :]
            hi = th[0, x[:, 0]]
            lo = tl[0, x[:, 0]]
            for i in range(1, 16):
                col = x[:, i]
                hi ^= th[i, col]
                lo ^= tl[i, col]
            packed[:, 0] = hi
            packed[:, 1] = lo
            y = packed.view(_np.uint8).reshape(n, 16)
        return y.copy() if m else y


def vector_ghash(h: bytes) -> VectorGHASH:
    """Per-subkey :class:`VectorGHASH`, cached across calls."""
    h = bytes(h)
    table = _VECTOR_GHASH_CACHE.get(h)
    if table is None:
        if len(_VECTOR_GHASH_CACHE) >= _CACHE_MAX:
            _VECTOR_GHASH_CACHE.clear()
        table = _VECTOR_GHASH_CACHE[h] = VectorGHASH(h)
    return table


def ghash_chunks_many(h: bytes, messages: Sequence[bytes]) -> list[bytes]:
    """GHASH many chunk streams under one subkey, batched by length.

    Each message must be a whole number of 16-byte chunks; a message is
    hashed exactly as :func:`repro.crypto.ghash.ghash_chunks` hashes its
    chunk list (no length block).  Messages of equal chunk count share one
    vector chain, so the common case — every message is one cache block —
    is a single batch.
    """
    _require_numpy()
    out: list[bytes | None] = [None] * len(messages)
    groups: dict[int, list[int]] = {}
    for index, message in enumerate(messages):
        if len(message) % 16:
            raise ValueError("GHASH messages must be whole 16-byte chunks")
        groups.setdefault(len(message) // 16, []).append(index)
    table = vector_ghash(h)
    zero = bytes(16)
    for num_chunks, indices in groups.items():
        if num_chunks == 0:
            for index in indices:
                out[index] = zero
            continue
        arr = _np.frombuffer(
            b"".join(messages[i] for i in indices), dtype=_np.uint8
        ).reshape(len(indices), num_chunks, 16)
        digests = table.chain(arr).tobytes()
        for slot, index in enumerate(indices):
            out[index] = digests[slot * 16:(slot + 1) * 16]
    return out  # type: ignore[return-value]


# -- seed construction as an array program ------------------------------------


def make_seeds_array(block_addresses: Sequence[int],
                     counters: Sequence[int], num_chunks: int,
                     iv_tag: int) -> "_np.ndarray":
    """Build the per-chunk AES seeds for many blocks as one uint8 array.

    Mirrors :func:`repro.crypto.ctr.make_seeds` for each (address, counter)
    pair: byte layout ``[48-bit chunk index][64-bit counter][16-bit IV]``,
    big-endian, ``num_chunks`` consecutive chunk seeds per block.  Returns
    shape ``(len(block_addresses) * num_chunks, 16)``.
    """
    _require_numpy()
    # Counters may exceed 64 bits (split: major||minor); mask in Python
    # ints first — np.asarray would overflow on >64-bit values.
    base = _np.asarray(
        [(a // CHUNK_SIZE) & _MASK48 for a in block_addresses],
        dtype=_np.uint64,
    )
    ctrs = _np.asarray([c & _MASK64 for c in counters], dtype=_np.uint64)
    idx = (_np.repeat(base, num_chunks)
           + _np.tile(_np.arange(num_chunks, dtype=_np.uint64), len(base)))
    idx &= _np.uint64(_MASK48)
    total = idx.shape[0]
    seeds = _np.empty((total, 16), dtype=_np.uint8)
    seeds[:, 0:6] = idx.astype(">u8").view(_np.uint8).reshape(total, 8)[:, 2:]
    seeds[:, 6:14] = (_np.repeat(ctrs, num_chunks)
                      .astype(">u8").view(_np.uint8).reshape(total, 8))
    seeds[:, 14] = (iv_tag >> 8) & 0xFF
    seeds[:, 15] = iv_tag & 0xFF
    return seeds


def _chunk_seeds_for_items(items) -> tuple["_np.ndarray", list[int]]:
    """Flat seed array + per-item chunk counts for (addr, counter, data)."""
    addresses: list[int] = []
    counters: list[int] = []
    counts: list[int] = []
    uniform = True
    for block_address, counter, data in items:
        if len(data) % CHUNK_SIZE:
            raise ValueError("data must be a whole number of 16-byte chunks")
        if block_address % CHUNK_SIZE:
            raise ValueError("chunk address must be 16-byte aligned")
        addresses.append(block_address)
        counters.append(counter)
        counts.append(len(data) // CHUNK_SIZE)
        uniform = uniform and counts[-1] == counts[0]
    if uniform and counts:
        return (make_seeds_array(addresses, counters, counts[0],
                                 ENCRYPTION_IV), counts)
    pieces = [
        make_seeds_array([address], [counter], count, ENCRYPTION_IV)
        for address, counter, count in zip(addresses, counters, counts)
        if count
    ]
    if not pieces:
        return _np.empty((0, 16), dtype=_np.uint8), counts
    return _np.concatenate(pieces), counts


def bulk_ctr_transform_vector(key: bytes, items, iv_tag: int = ENCRYPTION_IV
                              ) -> list[bytes]:
    """Counter-mode transform many blocks with the vector AES kernel.

    Drop-in peer of :func:`repro.crypto.ctr.bulk_ctr_transform`:
    ``items`` is ``(block_address, counter, data)`` triples, output order
    is input order, and the result is byte-identical to the table path.
    """
    _require_numpy()
    if iv_tag == ENCRYPTION_IV:
        seeds, counts = _chunk_seeds_for_items(items)
    else:
        triples = [(a, c, d) for a, c, d in items]
        addresses = [a for a, _, _ in triples]
        counters = [c for _, c, _ in triples]
        counts = [len(d) // CHUNK_SIZE for _, _, d in triples]
        seeds = _np.concatenate([
            make_seeds_array([address], [counter], count, iv_tag)
            for address, counter, count in zip(addresses, counters, counts)
            if count
        ]) if any(counts) else _np.empty((0, 16), dtype=_np.uint8)
    if seeds.shape[0] == 0:
        return [b"" for _ in counts]
    pads = vector_aes(key).encrypt_array(seeds)
    data_flat = _np.frombuffer(
        b"".join(data for _, _, data in items), dtype=_np.uint8
    ).reshape(-1, 16)
    flat = (data_flat ^ pads).tobytes()
    out: list[bytes] = []
    offset = 0
    for count in counts:
        out.append(flat[offset:offset + count * CHUNK_SIZE])
        offset += count * CHUNK_SIZE
    return out


def gcm_block_macs_vector(key: bytes, ghash_key: bytes, items,
                          mac_bits: int = 64) -> list[bytes]:
    """Batched GCM block MACs (digest XOR authentication pad, truncated).

    ``items`` is ``(block_address, counter, ciphertext)`` triples; each
    result is byte-identical to
    :func:`repro.crypto.mac.gcm_block_mac` on the same inputs.
    """
    _require_numpy()
    triples = list(items)
    if not triples:
        return []
    digests = ghash_chunks_many(ghash_key, [ct for _, _, ct in triples])
    seeds = make_seeds_array([a for a, _, _ in triples],
                             [c for _, c, _ in triples], 1,
                             AUTHENTICATION_IV)
    pads = vector_aes(key).encrypt_array(seeds)
    digest_arr = _np.frombuffer(b"".join(digests),
                                dtype=_np.uint8).reshape(-1, 16)
    macs = (digest_arr ^ pads)[:, : mac_bits // 8].tobytes()
    width = mac_bits // 8
    return [macs[i * width:(i + 1) * width] for i in range(len(triples))]


# -- kernel dispatch helpers --------------------------------------------------
#
# These are the names the rest of the system calls: they accept a kernel
# label (already passed through resolve_kernel by the config layer) and
# route to the scalar reference, the table kernel, or the vector path —
# falling back to the table kernel for sub-threshold batches, where the
# array overhead would make "vector" a de-facto slowdown.


def encrypt_blocks_kernel(aes: AES128, blocks: Sequence[bytes],
                          kernel: str = "table") -> list[bytes]:
    """Encrypt many 16-byte blocks with the named kernel."""
    if kernel == "vector" and HAVE_NUMPY and len(blocks) >= VECTOR_MIN_BLOCKS:
        return vector_aes(aes.key).encrypt_blocks(blocks)
    if kernel == "scalar":
        return [aes.encrypt_block_scalar(block) for block in blocks]
    return aes.encrypt_blocks(blocks)


def decrypt_blocks_kernel(aes: AES128, blocks: Sequence[bytes],
                          kernel: str = "table") -> list[bytes]:
    """Decrypt many 16-byte blocks with the named kernel."""
    if kernel == "vector" and HAVE_NUMPY and len(blocks) >= VECTOR_MIN_BLOCKS:
        return vector_aes(aes.key).decrypt_blocks(blocks)
    if kernel == "scalar":
        return [aes.decrypt_block_scalar(block) for block in blocks]
    return aes.decrypt_blocks(blocks)


def _ghash_chunks_scalar(h: bytes, chunks: Iterable[bytes]) -> bytes:
    """Bit-serial GHASH chain (the scalar reference, no tables)."""
    hval = block_to_int(h)
    y = 0
    for chunk in chunks:
        if len(chunk) != 16:
            raise ValueError("GHASH chunks must be 16 bytes")
        y = gf128_mul(y ^ block_to_int(chunk), hval)
    return y.to_bytes(16, "big")


def ghash_chunks_kernel(h: bytes, chunks: list[bytes],
                        kernel: str = "table") -> bytes:
    """GHASH one chunk list with the named kernel."""
    if kernel == "scalar":
        return _ghash_chunks_scalar(h, chunks)
    if kernel == "vector" and HAVE_NUMPY:
        return ghash_chunks_many(h, [b"".join(chunks)])[0]
    return ghash_chunks(h, chunks)
