"""Functional cryptography substrate, all implemented from scratch.

Contents:

* :mod:`repro.crypto.aes` — AES-128 (FIPS-197)
* :mod:`repro.crypto.gf128` / :mod:`repro.crypto.ghash` — GF(2^128) and GHASH
* :mod:`repro.crypto.gcm` — AES-GCM AEAD (SP 800-38D)
* :mod:`repro.crypto.sha1` — SHA-1 and HMAC-SHA1
* :mod:`repro.crypto.ctr` — counter-mode seeds and pads for memory encryption
* :mod:`repro.crypto.mac` — per-block authentication codes (GCM and SHA)
"""

from repro.crypto.aes import AES128, decrypt_blocks, encrypt_blocks
from repro.crypto.ctr import (
    AUTHENTICATION_IV,
    CHUNK_SIZE,
    ENCRYPTION_IV,
    bulk_ctr_transform,
    ctr_transform,
    generate_pads,
    make_seed,
    make_seeds,
    xor_bytes,
)
from repro.crypto.gcm import AESGCM, AuthenticationError, constant_time_equal
from repro.crypto.gf128 import GF128Element, GF128Table, gf128_mul
from repro.crypto.ghash import GHASH, ghash, ghash_chunks
from repro.crypto.mac import (
    gcm_block_mac,
    gcm_block_macs,
    macs_per_block,
    sha_block_mac,
)
from repro.crypto.sha1 import hmac_sha1, sha1
from repro.crypto.vector import (
    HAVE_NUMPY,
    KERNELS,
    VECTOR_MIN_BLOCKS,
    VectorAES128,
    VectorGHASH,
    bulk_ctr_transform_vector,
    decrypt_blocks_kernel,
    encrypt_blocks_kernel,
    gcm_block_macs_vector,
    ghash_chunks_kernel,
    ghash_chunks_many,
    make_seeds_array,
    resolve_kernel,
    vector_aes,
    vector_ghash,
)

__all__ = [
    "AES128",
    "AESGCM",
    "AuthenticationError",
    "AUTHENTICATION_IV",
    "CHUNK_SIZE",
    "ENCRYPTION_IV",
    "GF128Element",
    "GF128Table",
    "GHASH",
    "HAVE_NUMPY",
    "KERNELS",
    "VECTOR_MIN_BLOCKS",
    "VectorAES128",
    "VectorGHASH",
    "bulk_ctr_transform",
    "bulk_ctr_transform_vector",
    "constant_time_equal",
    "ctr_transform",
    "decrypt_blocks",
    "decrypt_blocks_kernel",
    "encrypt_blocks",
    "encrypt_blocks_kernel",
    "generate_pads",
    "gf128_mul",
    "ghash",
    "ghash_chunks",
    "ghash_chunks_kernel",
    "ghash_chunks_many",
    "gcm_block_mac",
    "gcm_block_macs",
    "gcm_block_macs_vector",
    "hmac_sha1",
    "macs_per_block",
    "make_seed",
    "make_seeds",
    "make_seeds_array",
    "resolve_kernel",
    "sha1",
    "sha_block_mac",
    "vector_aes",
    "vector_ghash",
    "xor_bytes",
]
