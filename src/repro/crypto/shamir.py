"""k-of-n secret sharing over GF(256) for scattered memory blocks.

Secure Scattered Memory (arXiv:2402.15824) replaces the ciphertext of a
cache block with *n* Shamir shares, any *k* of which reconstruct the
plaintext while any k-1 reveal nothing.  We share byte-wise: byte ``j`` of
the block is the constant term of a degree-(k-1) polynomial over GF(256),
and share ``s`` stores that polynomial evaluated at ``x = s + 1``.

The k-1 non-constant coefficient bytes are not random — they are keystream
bytes derived from the AES share key with the same seed discipline as
counter-mode encryption (chunk address || write counter || IV tag), one IV
tag per coefficient degree.  That keeps sharing deterministic (replayable
from (key, address, counter), no stored randomness) while preserving the
hiding property: to an observer without the key each coefficient is a PRF
output, so any single share is plaintext XOR/combined with unknown pad
material, exactly as strong as a CTR ciphertext.  Counter uniqueness —
the same invariant the encryption path already maintains — guarantees
coefficients never repeat across write-backs of one address.

GF(256) uses the AES polynomial x^8+x^4+x^3+x+1 (0x11B) with generator
0x03, so the log/exp tables match the field the rest of the crypto layer
computes in.
"""

from __future__ import annotations

from repro.crypto.aes import AES128
from repro.crypto.ctr import CHUNK_SIZE, make_seed

#: IV-tag base for coefficient keystreams; degree ``d`` (1-based) uses
#: SHARE_IV_BASE + d, keeping every degree's pads domain-separated from
#: each other and from the ENCRYPTION_IV / AUTHENTICATION_IV streams.
SHARE_IV_BASE = 0x5AA0

MAX_SHARES = 16


def _build_tables() -> tuple[list[int], list[int]]:
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value ^= (value << 1) & 0xFF ^ (0x1B if value & 0x80 else 0)
    for power in range(255, 512):
        exp[power] = exp[power - 255]
    return exp, log


_EXP, _LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(256) (AES polynomial)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


def coefficient_blocks(aes: AES128, block_address: int, counter: int,
                       block_size: int, k: int) -> list[bytes]:
    """Derive the k-1 deterministic coefficient blocks for one cache block.

    Returns coefficient streams for degrees 1..k-1, each ``block_size``
    bytes, generated chunk-by-chunk with the standard seed layout so the
    uniqueness argument is the CTR one verbatim.
    """
    if block_size % CHUNK_SIZE:
        raise ValueError("block size must be a whole number of 16-byte chunks")
    num_chunks = block_size // CHUNK_SIZE
    seeds = [
        make_seed(block_address + chunk * CHUNK_SIZE, counter,
                  SHARE_IV_BASE + degree)
        for degree in range(1, k)
        for chunk in range(num_chunks)
    ]
    pads = aes.encrypt_blocks(seeds)
    return [
        b"".join(pads[d * num_chunks:(d + 1) * num_chunks])
        for d in range(k - 1)
    ]


def split_block(data: bytes, coefficients: list[bytes], n: int) -> list[bytes]:
    """Produce the n share images of one block.

    Share ``s`` (0-based) evaluates every byte polynomial at ``x = s + 1``;
    x = 0 is never used (it would store the plaintext itself).
    """
    k = len(coefficients) + 1
    if not 2 <= k <= n <= MAX_SHARES:
        raise ValueError(f"need 2 <= k <= n <= {MAX_SHARES}, got k={k} n={n}")
    size = len(data)
    if any(len(c) != size for c in coefficients):
        raise ValueError("coefficient blocks must match the data length")
    shares = []
    for s in range(n):
        x = s + 1
        share = bytearray(data)
        x_pow = 1
        for coeff in coefficients:
            x_pow = gf_mul(x_pow, x)
            for j in range(size):
                if coeff[j]:
                    share[j] ^= gf_mul(coeff[j], x_pow)
        shares.append(bytes(share))
    return shares


def reconstruct_block(shares: list[tuple[int, bytes]]) -> bytes:
    """Recover the plaintext block from k ``(share_index, image)`` pairs.

    Lagrange interpolation at x = 0; ``share_index`` is the 0-based index
    used by :func:`split_block` (evaluation point ``share_index + 1``).
    """
    if len(shares) < 2:
        raise ValueError("reconstruction needs at least 2 shares")
    points = [s + 1 for s, _ in shares]
    if len(set(points)) != len(points):
        raise ValueError("duplicate share indices")
    size = len(shares[0][1])
    if any(len(image) != size for _, image in shares):
        raise ValueError("share images must all have the same length")
    result = bytearray(size)
    for i, (_, image) in enumerate(shares):
        xi = points[i]
        # Lagrange basis L_i(0) = prod_{m != i} x_m / (x_m ^ x_i)
        num, den = 1, 1
        for m, xm in enumerate(points):
            if m == i:
                continue
            num = gf_mul(num, xm)
            den = gf_mul(den, xm ^ xi)
        basis = gf_mul(num, gf_inv(den))
        if basis == 0:
            continue
        for j in range(size):
            if image[j]:
                result[j] ^= gf_mul(image[j], basis)
    return bytes(result)
