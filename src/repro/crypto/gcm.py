"""AES-GCM authenticated encryption (NIST SP 800-38D), from scratch.

Provides the standard GCM interface (96-bit IV fast path plus the general
GHASH-derived counter for other IV lengths), validated against the NIST /
McGrew-Viega test vectors in the test suite.  The secure-memory code paths
use the lower-level primitives in :mod:`repro.crypto.ctr` and
:mod:`repro.crypto.ghash` directly, because the paper composes the GCM
machinery in a slightly specialised way (per-chunk seeds carrying the block
address and split counter); this module exists both as the reference
implementation those paths are checked against and as a general-purpose
AEAD for library users.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES128
from repro.crypto.ghash import ghash


class AuthenticationError(Exception):
    """Raised when a GCM tag fails to verify."""


def _inc32(block: bytes) -> bytes:
    """Increment the low 32 bits of a 16-byte counter block (wrapping)."""
    prefix, counter = block[:12], int.from_bytes(block[12:], "big")
    return prefix + ((counter + 1) & 0xFFFFFFFF).to_bytes(4, "big")


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass(frozen=True)
class GCMResult:
    """Ciphertext and authentication tag produced by a seal operation."""

    ciphertext: bytes
    tag: bytes


class AESGCM:
    """AES-128-GCM authenticated encryption bound to one key."""

    def __init__(self, key: bytes, tag_length: int = 16):
        if not 4 <= tag_length <= 16:
            raise ValueError("tag_length must be between 4 and 16 bytes")
        self._aes = AES128(key)
        self._h = self._aes.encrypt_block(b"\x00" * 16)
        self.tag_length = tag_length

    def _initial_counter(self, iv: bytes) -> bytes:
        if len(iv) == 12:
            return iv + b"\x00\x00\x00\x01"
        return ghash(self._h, b"", iv)

    def _ctr_transform(self, counter0: bytes, data: bytes) -> bytes:
        """Counter-mode keystream XOR, starting from inc32(counter0)."""
        output = bytearray()
        counter = counter0
        for offset in range(0, len(data), 16):
            counter = _inc32(counter)
            pad = self._aes.encrypt_block(counter)
            chunk = data[offset : offset + 16]
            output.extend(_xor_bytes(chunk, pad[: len(chunk)]))
        return bytes(output)

    def _tag(self, counter0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        s = ghash(self._h, aad, ciphertext)
        full = _xor_bytes(s, self._aes.encrypt_block(counter0))
        return full[: self.tag_length]

    def seal(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> GCMResult:
        """Encrypt and authenticate; returns ciphertext plus tag."""
        counter0 = self._initial_counter(iv)
        ciphertext = self._ctr_transform(counter0, plaintext)
        return GCMResult(ciphertext, self._tag(counter0, aad, ciphertext))

    def open(self, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises AuthenticationError on mismatch."""
        counter0 = self._initial_counter(iv)
        expected = self._tag(counter0, aad, ciphertext)
        if not constant_time_equal(expected, tag):
            raise AuthenticationError("GCM tag mismatch")
        return self._ctr_transform(counter0, ciphertext)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on mismatch."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
