"""Authentication-code helpers: block MAC construction and truncation.

The paper's Merkle tree stores authentication codes of configurable size
(128, 64, or 32 bits; 64 is the default).  Two MAC constructions coexist:

* **GCM MAC** — GHASH over the ciphertext chunks of the protected block,
  XORed with an AES *authentication pad* generated from the block address,
  its counter, and the authentication IV.  Because the pad computation needs
  only the address and counter (both known at miss time), it overlaps with
  the memory fetch; the GHASH chain runs as ciphertext chunks arrive.

* **SHA MAC** — HMAC-SHA1 over (address || counter || ciphertext), the
  construction used by the prior-work baselines (XOM-style and Merkle/SHA
  designs).  Its full latency lands after the data arrives.

Both are truncated to the configured MAC size, which sets the Merkle-tree
arity: a 64-byte code block holds 64/mac_bytes child codes.
"""

from __future__ import annotations

from repro.crypto.aes import AES128
from repro.crypto.ctr import AUTHENTICATION_IV, CHUNK_SIZE, make_seed, xor_bytes
from repro.crypto.ghash import ghash_chunks
from repro.crypto.sha1 import hmac_sha1

VALID_MAC_BITS = (32, 64, 128)


def _split_chunks(data: bytes) -> list[bytes]:
    if len(data) % CHUNK_SIZE:
        raise ValueError("MAC input must be whole 16-byte chunks")
    return [data[i : i + CHUNK_SIZE] for i in range(0, len(data), CHUNK_SIZE)]


def gcm_block_mac(aes: AES128, ghash_key: bytes, block_address: int,
                  counter: int, ciphertext: bytes, mac_bits: int = 64) -> bytes:
    """Compute the (truncated) GCM authentication code for one block."""
    if mac_bits not in VALID_MAC_BITS:
        raise ValueError(f"mac_bits must be one of {VALID_MAC_BITS}")
    digest = ghash_chunks(ghash_key, _split_chunks(ciphertext))
    auth_pad = aes.encrypt_block(
        make_seed(block_address, counter, AUTHENTICATION_IV)
    )
    return xor_bytes(digest, auth_pad)[: mac_bits // 8]


def gcm_block_macs(aes: AES128, ghash_key: bytes,
                   items: list[tuple[int, int, bytes]],
                   mac_bits: int = 64, kernel: str = "table") -> list[bytes]:
    """Compute GCM codes for many blocks, batched through one kernel.

    ``items`` is ``(block_address, counter, ciphertext)`` triples; results
    preserve order and are byte-identical to :func:`gcm_block_mac` per item
    under every kernel.  The vector kernel hashes all same-length
    ciphertexts in one GHASH chain and generates all authentication pads in
    one AES batch — the bulk path behind Merkle ``verify_leaves``.
    """
    if mac_bits not in VALID_MAC_BITS:
        raise ValueError(f"mac_bits must be one of {VALID_MAC_BITS}")
    if kernel == "vector":
        from repro.crypto import vector as _vector

        if _vector.HAVE_NUMPY and len(items) >= _vector.VECTOR_MIN_BLOCKS:
            return _vector.gcm_block_macs_vector(
                aes.key, ghash_key, items, mac_bits
            )
    if kernel == "scalar":
        from repro.crypto.vector import _ghash_chunks_scalar

        out = []
        for block_address, counter, ciphertext in items:
            digest = _ghash_chunks_scalar(ghash_key, _split_chunks(ciphertext))
            auth_pad = aes.encrypt_block_scalar(
                make_seed(block_address, counter, AUTHENTICATION_IV)
            )
            out.append(xor_bytes(digest, auth_pad)[: mac_bits // 8])
        return out
    return [
        gcm_block_mac(aes, ghash_key, block_address, counter, ciphertext,
                      mac_bits)
        for block_address, counter, ciphertext in items
    ]


def sha_block_mac(key: bytes, block_address: int, counter: int,
                  ciphertext: bytes, mac_bits: int = 64) -> bytes:
    """Compute the (truncated) HMAC-SHA1 code for one block."""
    if mac_bits not in VALID_MAC_BITS:
        raise ValueError(f"mac_bits must be one of {VALID_MAC_BITS}")
    message = (
        block_address.to_bytes(8, "big")
        + (counter & ((1 << 64) - 1)).to_bytes(8, "big")
        + ciphertext
    )
    return hmac_sha1(key, message)[: mac_bits // 8]


def macs_per_block(block_size: int, mac_bits: int) -> int:
    """How many MACs fit in one cache block — the Merkle-tree arity."""
    return block_size // (mac_bits // 8)
