"""repro — split-counter memory encryption and GCM authentication.

A from-scratch reproduction of Yan, Rogers, Englender, Solihin, Prvulovic,
"Improving Cost, Performance, and Security of Memory Encryption and
Authentication" (ISCA 2006).

Layers:

* :mod:`repro.crypto` — functional AES-128, GCM/GHASH, SHA-1 primitives.
* :mod:`repro.memory` — caches, DRAM, and the processor-memory bus.
* :mod:`repro.counters` — split / monolithic / global / predicted counters.
* :mod:`repro.auth` — MAC schemes, the Merkle tree, strictness policies.
* :mod:`repro.core` — the secure memory controller (functional layer).
* :mod:`repro.engines` — crypto-engine timing models.
* :mod:`repro.sim` — the trace-driven timing simulator (IPC results).
* :mod:`repro.workloads` — SPEC CPU 2000-like synthetic traces.
* :mod:`repro.attacks` — hardware-attack injectors and detection checks.
* :mod:`repro.analysis` — table/series formatting for the benchmarks.

Quick start::

    from repro import api

    result = api.run("split+gcm", "mcf", refs=40_000)
    print(result.normalized_ipc)

    from repro import SecureMemorySystem

    memory = SecureMemorySystem(api.get_config("split+gcm"),
                                protected_bytes=1 << 20)
    memory.write(0x1000, b"secret payload")
    assert memory.read(0x1000, 14) == b"secret payload"
"""

from repro import api
from repro.core import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    PRESETS,
    SecureMemoryConfig,
    SecureMemorySystem,
    baseline_config,
    direct_config,
    gcm_auth_config,
    mono_config,
    mono_gcm_config,
    mono_sha_config,
    prediction_config,
    sha_auth_config,
    split_config,
    split_gcm_config,
    split_sha_config,
    xom_sha_config,
)
from repro.auth import AuthPolicy, IntegrityViolation

__version__ = "1.0.0"

__all__ = [
    "AuthMode",
    "AuthPolicy",
    "CounterOrg",
    "EncryptionMode",
    "IntegrityViolation",
    "PRESETS",
    "SecureMemoryConfig",
    "SecureMemorySystem",
    "__version__",
    "api",
    "baseline_config",
    "direct_config",
    "gcm_auth_config",
    "mono_config",
    "mono_gcm_config",
    "mono_sha_config",
    "prediction_config",
    "sha_auth_config",
    "split_config",
    "split_gcm_config",
    "split_sha_config",
    "xom_sha_config",
]
