"""Compact versioned on-disk container for memory-access traces.

The ``.rtrc`` format stores one :class:`~repro.workloads.trace.Trace` as a
fixed-offset binary file that is simultaneously

* **streamable** — :class:`TraceWriter` appends records one at a time (or
  in chunks) with O(1) memory, so a trace far larger than RAM can be
  recorded from a live run;
* **mmap-able** — the payload begins at a page-aligned offset
  (:data:`DATA_OFFSET`) and each record is the packed little-endian
  equivalent of :data:`~repro.workloads.trace.TRACE_DTYPE`, so
  :func:`mmap_records` hands the batched sim engine a zero-copy
  ``numpy.memmap`` view of the whole file;
* **integrity-checksummed** — the header carries a CRC32 over itself plus
  CRC32 *and* SHA-256 over the payload, so truncation, bit flips, and
  version skew are rejected loudly (:class:`TraceFileError`) instead of
  silently replaying a corrupted stream.

Layout::

    offset 0    magic           b"RPRTRC1\\n"        (8 bytes)
    offset 8    header_len      uint32 LE
    offset 12   header_crc32    uint32 LE            (over the JSON bytes)
    offset 16   header JSON     {"version", "name", "records",
                                 "payload_crc32", "payload_sha256"}
    offset 4096 payload         records x 13 bytes   struct "<qi?"
                                (addr int64, gap int32, write bool)

:func:`trace_fingerprint` exposes a short payload-derived identity (a
SHA-256 prefix read from the header alone) — path- and name-independent,
which is what sweep-cell dedupe keys on for trace-driven cells.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import zlib
from typing import Iterable, Iterator

from repro.workloads.trace import TRACE_DTYPE, Trace

try:  # optional: only mmap_records needs numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = [
    "DATA_OFFSET",
    "MAGIC",
    "RECORD_STRUCT",
    "TRACE_VERSION",
    "TraceFileError",
    "TraceWriter",
    "iter_records",
    "load_trace",
    "mmap_records",
    "read_header",
    "trace_fingerprint",
    "write_trace",
]

#: file magic — 8 bytes, version digit included so a v2 file with an
#: incompatible record layout fails at the magic check, not mid-payload
MAGIC = b"RPRTRC1\n"

#: header format version carried inside the JSON header
TRACE_VERSION = 1

#: payload offset — one page, so ``numpy.memmap(..., offset=DATA_OFFSET)``
#: is page-aligned on every platform we care about
DATA_OFFSET = 4096

#: one packed record: addr int64, gap int32, write bool — byte-identical
#: to one :data:`~repro.workloads.trace.TRACE_DTYPE` element
RECORD_STRUCT = struct.Struct("<qi?")

#: hex digits of the payload SHA-256 used as the short fingerprint
_FINGERPRINT_HEX = 12

#: records decoded per read when streaming (load_trace / iter_records)
_CHUNK_RECORDS = 65536


class TraceFileError(ValueError):
    """A trace file failed validation (magic, version, checksum, size)."""


# -- writing ------------------------------------------------------------------


class TraceWriter:
    """Streaming trace recorder with O(1) memory.

    Opens ``path`` for writing, reserves the header page, and streams
    packed records while updating the payload CRC32/SHA-256 incrementally;
    :meth:`close` (or the context manager exit) seeks back and finalizes
    the header.  A writer abandoned by an exception leaves a file whose
    header claims 0 records written under a failed flag — ``records`` is
    only trusted after a clean close because the checksums would not match
    otherwise.

        with TraceWriter(path, name="db-page-cache") as writer:
            for gap, write, addr in source:
                writer.append(gap, write, addr)
    """

    def __init__(self, path: str | os.PathLike, *, name: str):
        self.path = os.fspath(path)
        self.name = name
        self.records = 0
        self._crc = 0
        self._sha = hashlib.sha256()
        self._handle: io.BufferedWriter | None = open(self.path, "wb")
        self._handle.write(b"\x00" * DATA_OFFSET)  # header written on close
        self._closed = False

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # leave no half-valid file behind a raised exception
            self.abort()

    def append(self, gap: int, write: bool, addr: int) -> None:
        """Append one reference record."""
        self._write_packed(RECORD_STRUCT.pack(addr, gap, bool(write)))
        self.records += 1

    def extend(self, gaps: Iterable[int], writes: Iterable[bool],
               addrs: Iterable[int]) -> None:
        """Append many records; streams in bounded chunks."""
        pack = RECORD_STRUCT.pack
        chunk: list[bytes] = []
        for gap, write, addr in zip(gaps, writes, addrs):
            chunk.append(pack(addr, gap, bool(write)))
            if len(chunk) >= _CHUNK_RECORDS:
                self._write_packed(b"".join(chunk))
                self.records += len(chunk)
                chunk.clear()
        if chunk:
            self._write_packed(b"".join(chunk))
            self.records += len(chunk)

    def _write_packed(self, data: bytes) -> None:
        if self._handle is None:
            raise ValueError("TraceWriter is closed")
        self._handle.write(data)
        self._crc = zlib.crc32(data, self._crc)
        self._sha.update(data)

    def close(self) -> None:
        """Finalize the header and close the file."""
        if self._closed:
            return
        handle = self._handle
        if handle is None:  # pragma: no cover - double-abort guard
            return
        header = {
            "version": TRACE_VERSION,
            "name": self.name,
            "records": self.records,
            "payload_crc32": self._crc,
            "payload_sha256": self._sha.hexdigest(),
        }
        raw = json.dumps(header, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
        if len(raw) > DATA_OFFSET - 16:
            handle.close()
            raise TraceFileError(
                f"trace header too large ({len(raw)} bytes) — "
                f"shorten the trace name")
        handle.seek(0)
        handle.write(MAGIC)
        handle.write(struct.pack("<II", len(raw), zlib.crc32(raw)))
        handle.write(raw)
        handle.close()
        self._handle = None
        self._closed = True

    def abort(self) -> None:
        """Close and delete the partial file (exception path)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True
        try:
            os.unlink(self.path)
        except OSError:  # pragma: no cover - already gone
            pass


def write_trace(path: str | os.PathLike, trace: Trace) -> str:
    """Write a materialized :class:`Trace` to ``path`` in one shot."""
    with TraceWriter(path, name=trace.name) as writer:
        writer.extend(trace.gaps, trace.writes, trace.addrs)
    return os.fspath(path)


# -- reading ------------------------------------------------------------------


def read_header(path: str | os.PathLike) -> dict:
    """Validate and return the header dict (no payload read).

    Checks magic, header CRC, version, and that the file size matches the
    declared record count exactly — so truncation is caught without
    touching the payload.  Payload checksums are verified by
    :func:`load_trace` / :func:`iter_records`, which actually read it.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        prefix = handle.read(16)
        if len(prefix) < 16 or prefix[:8] != MAGIC:
            raise TraceFileError(
                f"{path}: not a repro trace file (bad magic; expected "
                f"{MAGIC!r})")
        header_len, header_crc = struct.unpack("<II", prefix[8:16])
        if header_len > DATA_OFFSET - 16:
            raise TraceFileError(
                f"{path}: corrupt header length {header_len}")
        raw = handle.read(header_len)
    if len(raw) != header_len or zlib.crc32(raw) != header_crc:
        raise TraceFileError(
            f"{path}: header checksum mismatch — file is corrupt")
    try:
        header = json.loads(raw)
    except ValueError as exc:  # pragma: no cover - crc catches this first
        raise TraceFileError(f"{path}: undecodable header: {exc}") from exc
    version = header.get("version")
    if version != TRACE_VERSION:
        raise TraceFileError(
            f"{path}: unsupported trace version {version!r} "
            f"(this build reads version {TRACE_VERSION})")
    records = header.get("records")
    if not isinstance(records, int) or records < 0:
        raise TraceFileError(f"{path}: corrupt record count {records!r}")
    expected_size = DATA_OFFSET + records * RECORD_STRUCT.size
    actual_size = os.path.getsize(path)
    if actual_size != expected_size:
        raise TraceFileError(
            f"{path}: truncated or padded payload — header declares "
            f"{records} records ({expected_size} bytes), file is "
            f"{actual_size} bytes")
    return header


def iter_records(path: str | os.PathLike
                 ) -> Iterator[tuple[int, bool, int]]:
    """Stream ``(gap, write, addr)`` tuples, verifying checksums.

    Reads the payload in bounded chunks (traces ≫ RAM are fine) and
    raises :class:`TraceFileError` *after the final record* if the
    payload CRC32/SHA-256 do not match the header — callers that must not
    act on unverified data should materialize via :func:`load_trace`,
    which validates before returning anything.
    """
    path = os.fspath(path)
    header = read_header(path)
    remaining = header["records"]
    crc = 0
    sha = hashlib.sha256()
    unpack_from = RECORD_STRUCT.unpack_from
    record_size = RECORD_STRUCT.size
    with open(path, "rb") as handle:
        handle.seek(DATA_OFFSET)
        while remaining > 0:
            count = min(remaining, _CHUNK_RECORDS)
            data = handle.read(count * record_size)
            if len(data) != count * record_size:  # pragma: no cover
                raise TraceFileError(f"{path}: payload shrank mid-read")
            crc = zlib.crc32(data, crc)
            sha.update(data)
            for offset in range(0, len(data), record_size):
                addr, gap, write = unpack_from(data, offset)
                yield gap, write, addr
            remaining -= count
    if crc != header["payload_crc32"] or \
            sha.hexdigest() != header["payload_sha256"]:
        raise TraceFileError(
            f"{path}: payload checksum mismatch — trace data is corrupt")


def load_trace(path: str | os.PathLike) -> Trace:
    """Read a trace file into a :class:`Trace` (plain Python lists).

    The payload checksum is verified in full before the :class:`Trace`
    is constructed, so a corrupt file can never be silently misreplayed.
    The returned lists are element-for-element identical to what the
    original generator produced — the foundation of the record/replay
    bit-equivalence differential.
    """
    path = os.fspath(path)
    header = read_header(path)
    gaps: list[int] = []
    writes: list[bool] = []
    addrs: list[int] = []
    for gap, write, addr in iter_records(path):
        gaps.append(gap)
        writes.append(write)
        addrs.append(addr)
    return Trace(name=header["name"], gaps=gaps, writes=writes, addrs=addrs)


def mmap_records(path: str | os.PathLike):
    """Zero-copy ``numpy.memmap`` view of the payload (``TRACE_DTYPE``).

    Validates the header (magic/CRC/version/size) but *not* the payload
    checksum — a full-payload hash would defeat the point of mapping a
    trace ≫ RAM.  Use :func:`load_trace` when the stronger guarantee
    matters more than the copy.
    """
    if _np is None:
        raise RuntimeError("mmap_records requires numpy")
    path = os.fspath(path)
    header = read_header(path)
    return _np.memmap(path, dtype=TRACE_DTYPE, mode="r",
                      offset=DATA_OFFSET, shape=(header["records"],))


def trace_fingerprint(path: str | os.PathLike) -> str:
    """Short payload identity: first 12 hex chars of the payload SHA-256.

    Read from the (CRC-verified) header only, so it is O(1) regardless of
    trace size, and independent of the file's path or stored name — two
    recordings of the same reference stream fingerprint identically.
    """
    return read_header(path)["payload_sha256"][:_FINGERPRINT_HEX]
