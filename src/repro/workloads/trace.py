"""Memory-access trace format used by the timing simulator.

A trace is three parallel lists (plain Python lists — the hot simulation
loop indexes them far faster than boxed numpy scalars):

* ``gaps[i]``   — non-memory instructions executed since the previous
  memory reference (the i-th reference is one more instruction);
* ``writes[i]`` — True for stores;
* ``addrs[i]``  — byte address referenced.

Traces are produced by :mod:`repro.workloads.generators` from per-benchmark
profiles; they stand in for the SPEC CPU 2000 reference runs of the paper
(see DESIGN.md for the substitution argument).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

try:  # optional: only the batched sim engine needs ndarray views
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: structured dtype of :meth:`Trace.arrays` — one record per reference
TRACE_DTYPE = [("addr", "<i8"), ("gap", "<i4"), ("write", "?")]


@dataclass
class Trace:
    """One benchmark's synthetic memory-reference stream."""

    name: str
    gaps: list[int]
    writes: list[bool]
    addrs: list[int]

    def __post_init__(self) -> None:
        if not (len(self.gaps) == len(self.writes) == len(self.addrs)):
            raise ValueError("trace arrays must have equal length")
        # lazily materialized views (see arrays()/cum_cycles); not part of
        # the dataclass value identity
        self._arrays = None
        self._block_ids: dict = {}
        self._cum_insns: list[int] | None = None
        self._cum_cycles: dict = {}

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def instructions(self) -> int:
        """Total instruction count (memory references + gap instructions)."""
        return len(self.gaps) + sum(self.gaps)

    @property
    def write_fraction(self) -> float:
        if not self.writes:
            return 0.0
        return sum(self.writes) / len(self.writes)

    def footprint_blocks(self, block_size: int = 64) -> int:
        """Distinct cache blocks touched."""
        return len({a // block_size for a in self.addrs})

    # -- materialized views (batched engine + shared cycle arithmetic) -------

    def arrays(self):
        """The trace as one structured ndarray (``TRACE_DTYPE``), cached.

        Raises :class:`RuntimeError` without numpy — only the batched sim
        engine needs this view; the scalar engine sticks to the plain
        lists.
        """
        if _np is None:
            raise RuntimeError(
                "Trace.arrays() requires numpy; install it or use "
                "sim_engine='scalar'")
        if self._arrays is None:
            recs = _np.zeros(len(self.addrs), dtype=TRACE_DTYPE)
            recs["addr"] = self.addrs
            recs["gap"] = self.gaps
            recs["write"] = self.writes
            self._arrays = recs
        return self._arrays

    def block_ids(self, block_size: int):
        """Per-reference block-aligned addresses as an int64 ndarray, cached
        per block size."""
        cached = self._block_ids.get(block_size)
        if cached is None:
            cached = self.arrays()["addr"] & ~_np.int64(block_size - 1)
            self._block_ids[block_size] = cached
        return cached

    @property
    def cum_insns(self) -> list[int]:
        """Exclusive prefix sums of per-reference instruction counts.

        ``cum_insns[i]`` is the number of instructions retired by the
        first ``i`` references (each reference is ``gap + 1``
        instructions); length is ``len(trace) + 1``.
        """
        if self._cum_insns is None:
            self._cum_insns = [0] + list(
                itertools.accumulate(g + 1 for g in self.gaps))
        return self._cum_insns

    def cum_cycles(self, cpi: float) -> list[float]:
        """Exclusive prefix sums of per-reference issue cycles at ``cpi``.

        Computed once by strict sequential float addition and shared by
        both sim engines, so ``cycle = cycle_base + cum_cycles[i]`` is the
        *same* IEEE double no matter which engine evaluates it — the
        foundation of the bit-exact scalar/batched equivalence suite.
        """
        cached = self._cum_cycles.get(cpi)
        if cached is None:
            cached = [0.0] + list(
                itertools.accumulate((g + 1) * cpi for g in self.gaps))
            self._cum_cycles[cpi] = cached
        return cached

    def slice(self, start: int, stop: int) -> "Trace":
        """Sub-trace covering references [start, stop)."""
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            gaps=self.gaps[start:stop],
            writes=self.writes[start:stop],
            addrs=self.addrs[start:stop],
        )
