"""Memory-access trace format used by the timing simulator.

A trace is three parallel lists (plain Python lists — the hot simulation
loop indexes them far faster than boxed numpy scalars):

* ``gaps[i]``   — non-memory instructions executed since the previous
  memory reference (the i-th reference is one more instruction);
* ``writes[i]`` — True for stores;
* ``addrs[i]``  — byte address referenced.

Traces are produced by :mod:`repro.workloads.generators` from per-benchmark
profiles; they stand in for the SPEC CPU 2000 reference runs of the paper
(see DESIGN.md for the substitution argument).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Trace:
    """One benchmark's synthetic memory-reference stream."""

    name: str
    gaps: list[int]
    writes: list[bool]
    addrs: list[int]

    def __post_init__(self) -> None:
        if not (len(self.gaps) == len(self.writes) == len(self.addrs)):
            raise ValueError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def instructions(self) -> int:
        """Total instruction count (memory references + gap instructions)."""
        return len(self.gaps) + sum(self.gaps)

    @property
    def write_fraction(self) -> float:
        if not self.writes:
            return 0.0
        return sum(self.writes) / len(self.writes)

    def footprint_blocks(self, block_size: int = 64) -> int:
        """Distinct cache blocks touched."""
        return len({a // block_size for a in self.addrs})

    def slice(self, start: int, stop: int) -> "Trace":
        """Sub-trace covering references [start, stop)."""
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            gaps=self.gaps[start:stop],
            writes=self.writes[start:stop],
            addrs=self.addrs[start:stop],
        )
