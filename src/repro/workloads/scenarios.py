"""Scenario library beyond SPEC, plus the unified workload resolver.

Three access patterns the paper's SPEC2k-like generators do not cover,
each with a working set far larger than the 1 MB L2 so every preset's
off-chip machinery (counter caches, Merkle traffic, MAC checks) is
exercised under realistic locality:

* ``db-page-cache`` — an OLTP-ish buffer pool: a 32 MB pool of 4 KB pages
  visited with long intra-page bursts (tuple scans within a pinned page),
  a sequential scan stream (range queries), and a small hot region for
  the index root / latch words.
* ``gc-mark-sweep`` — a phased tracing collector: mutator phases bump-
  allocate sequential writes into a young generation and pointer-chase
  the heap; mark phases random-walk a 24 MB heap with near-zero spatial
  locality (the counter-cache stressor); sweep phases scan the heap
  sequentially with read-modify-write free-list maintenance (the
  write-back re-encryption stressor).
* ``ml-weight-stream`` — inference serving: layer weights streamed
  block-by-block from a 48 MB read-only region (two concurrent layers),
  with a small hot activation buffer written densely between layers.

Scenarios register in :data:`SCENARIOS` and are named exactly like SPEC
apps everywhere (``repro sim --app db-page-cache``, sweeps, fuzz, bench,
serve loadgen).  The resolver at the bottom (:func:`workload_kind`,
:func:`resolve_trace`, :func:`canonical_workload_id`) is the single
place that maps a workload *name* — SPEC app, scenario, or a recorded
``.rtrc`` trace path (``trace:/path/file.rtrc`` or any ``*.rtrc``) — to
a :class:`~repro.workloads.trace.Trace`, so harnesses need zero
per-workload wiring.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable

from repro.workloads.generators import (
    BLOCK,
    WorkloadProfile,
    generate_trace,
)
from repro.workloads.spec2k import PROFILES, SPEC_APPS
from repro.workloads.trace import Trace

__all__ = [
    "SCENARIO_APPS",
    "SCENARIOS",
    "canonical_workload_id",
    "is_trace_workload",
    "resolve_trace",
    "scenario_trace",
    "trace_path_of",
    "workload_kind",
    "workload_names",
]

MB = 1024 * 1024

#: buffer-pool scenario: 32 MB of pages, long in-page bursts, scan stream
_DB_PAGE_CACHE = WorkloadProfile(
    name="db-page-cache",
    mean_gap=2.5,
    write_fraction=0.22,          # dirty-page rate of an OLTP mix
    w_hot=0.12,                   # index root + latches
    w_stream=0.18,                # sequential range scans
    w_random=0.0,
    w_pages=0.70,                 # the buffer pool itself
    hot_bytes=16 * 1024,
    stream_bytes=16 * MB,
    stream_stride=BLOCK,          # scans read whole tuples block-at-a-time
    num_streams=2,
    page_pool_pages=8192,         # 32 MB pool ≫ the 1 MB L2
    page_burst=48,                # tuples examined per pinned page
)

#: inference scenario: weights streamed once per layer, hot activations
_ML_WEIGHT_STREAM = WorkloadProfile(
    name="ml-weight-stream",
    mean_gap=1.5,                 # dense FMA loops between loads
    write_fraction=0.04,          # weights are read-only
    w_hot=0.25,                   # activation buffer
    w_stream=0.72,                # the weight stream
    w_random=0.03,                # embedding-table gathers
    w_pages=0.0,
    hot_bytes=256 * 1024,
    hot_write_fraction=0.5,       # activations are written as often as read
    stream_bytes=48 * MB,         # model weights ≫ every cache
    stream_stride=BLOCK,          # each weight block read exactly once/pass
    num_streams=2,                # two layers prefetched concurrently
    random_bytes=8 * MB,
)

#: gc-mark-sweep geometry (module constants so the generator and tests
#: agree on the footprint)
_GC_HEAP_BYTES = 24 * MB
_GC_YOUNG_BYTES = 2 * MB
#: refs per phase within one collection cycle (mutate, mark, sweep)
_GC_PHASES = (("mutate", 2400), ("mark", 1100), ("sweep", 600))
#: per-phase mean non-memory instruction gap
_GC_MEAN_GAP = {"mutate": 2.5, "mark": 1.0, "sweep": 1.2}


def _gc_mark_sweep(num_refs: int, seed: int = 1234) -> Trace:
    """Phased tracing-GC trace; same seeding discipline as generate_trace."""
    rng = random.Random(
        (zlib.crc32(b"gc-mark-sweep") & 0xFFFF) ^ seed)
    heap_blocks = _GC_HEAP_BYTES // BLOCK
    young_base = _GC_HEAP_BYTES
    young_blocks = _GC_YOUNG_BYTES // BLOCK
    alloc_ptr = 0                   # bump allocator, wraps (survivors copied)
    mark_cursor = rng.randrange(heap_blocks)
    sweep_cursor = 0

    gaps: list[int] = []
    writes: list[bool] = []
    addrs: list[int] = []
    produced = 0
    while produced < num_refs:
        for phase, length in _GC_PHASES:
            mean_gap = _GC_MEAN_GAP[phase]
            for _ in range(min(length, num_refs - produced)):
                if phase == "mutate":
                    if rng.random() < 0.55:
                        # bump-allocation store into the young generation
                        addr = young_base + (alloc_ptr % young_blocks) * BLOCK
                        alloc_ptr += 1
                        is_write = True
                    else:
                        # mutator field access: pointer-chase into the heap
                        addr = rng.randrange(heap_blocks) * BLOCK
                        is_write = rng.random() < 0.10
                elif phase == "mark":
                    # tracing walk: each object points somewhere unrelated
                    mark_cursor = (mark_cursor * 1103515245
                                   + rng.randrange(65536)) % heap_blocks
                    addr = mark_cursor * BLOCK
                    is_write = rng.random() < 0.04      # mark-bit flips
                else:  # sweep: sequential scan, free-list read-modify-write
                    addr = (sweep_cursor % heap_blocks) * BLOCK
                    sweep_cursor += 1
                    is_write = rng.random() < 0.50
                gaps.append(int(rng.expovariate(1.0 / mean_gap)))
                writes.append(is_write)
                addrs.append(addr)
                produced += 1

    return Trace(name="gc-mark-sweep", gaps=gaps, writes=writes, addrs=addrs)


def _profile_scenario(profile: WorkloadProfile
                      ) -> Callable[[int, int], Trace]:
    return lambda num_refs, seed=1234: generate_trace(
        profile, num_refs, seed)


#: scenario name -> factory(num_refs, seed) -> Trace
SCENARIOS: dict[str, Callable[[int, int], Trace]] = {
    "db-page-cache": _profile_scenario(_DB_PAGE_CACHE),
    "gc-mark-sweep": _gc_mark_sweep,
    "ml-weight-stream": _profile_scenario(_ML_WEIGHT_STREAM),
}

SCENARIO_APPS = tuple(sorted(SCENARIOS))


def scenario_trace(name: str, num_refs: int = 120_000,
                   seed: int = 1234) -> Trace:
    """Generate a scenario-library trace (mirrors ``spec_trace``)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; have {', '.join(SCENARIO_APPS)}"
        ) from None
    return factory(num_refs, seed)


# -- unified workload resolver ------------------------------------------------


def is_trace_workload(name: str) -> bool:
    """True if ``name`` denotes a recorded trace file, not a generator."""
    return name.startswith("trace:") or name.endswith(".rtrc")


def trace_path_of(name: str) -> str:
    """Filesystem path of a trace workload name (strips ``trace:``)."""
    return name[len("trace:"):] if name.startswith("trace:") else name


def workload_kind(name: str) -> str:
    """Classify a workload name: ``"spec"``, ``"scenario"``, ``"trace"``.

    Raises :class:`ValueError` with close-match suggestions for a name
    that is none of the three — the single validation point shared by
    the API, the CLI, and the sweep runner.
    """
    if is_trace_workload(name):
        return "trace"
    if name in PROFILES:
        return "spec"
    if name in SCENARIOS:
        return "scenario"
    import difflib

    known = workload_names()
    close = difflib.get_close_matches(name, known, n=3)
    hint = f"; did you mean {', '.join(close)}?" if close else ""
    raise ValueError(
        f"unknown app or workload {name!r}{hint} (SPEC apps and "
        f"scenarios: {', '.join(known)}; or a recorded trace via "
        f"'trace:<path>' / '<path>.rtrc')")


def workload_names() -> tuple[str, ...]:
    """Every nameable generator workload (SPEC apps + scenarios)."""
    return SPEC_APPS + SCENARIO_APPS


def resolve_trace(workload: str, num_refs: int,
                  seed: int = 1234) -> Trace:
    """Materialize any workload name into a :class:`Trace`.

    Generators produce exactly ``num_refs`` references.  A recorded trace
    replays its stored stream: asking for fewer references replays a
    prefix, asking for more than were recorded is an error (a replay must
    never invent references the recording does not contain).
    """
    kind = workload_kind(workload)
    if kind == "trace":
        from repro.workloads.tracefile import load_trace

        trace = load_trace(trace_path_of(workload))
        if num_refs > len(trace):
            raise ValueError(
                f"trace {trace_path_of(workload)!r} holds {len(trace)} "
                f"references but {num_refs} were requested — replay "
                f"cannot extend a recording")
        if num_refs < len(trace):
            return trace.slice(0, num_refs)
        return trace
    if kind == "scenario":
        return SCENARIOS[workload](num_refs, seed)
    return generate_trace(PROFILES[workload], num_refs, seed)


def canonical_workload_id(name: str) -> str:
    """Path-independent identity of a workload name.

    Generator workloads are their own identity.  Trace workloads
    canonicalize to ``trace-<fingerprint>`` (the payload SHA-256 prefix),
    so two sweep cells replaying the same recording — under different
    paths or names — dedupe to one cell, and a *different* recording at a
    reused path never aliases a completed cell.
    """
    if not is_trace_workload(name):
        return name
    from repro.workloads.tracefile import trace_fingerprint

    return f"trace-{trace_fingerprint(trace_path_of(name))}"
