"""Synthetic address-stream generators standing in for SPEC CPU 2000.

Each benchmark profile mixes four access components whose parameters are
the first-order levers of every experiment in the paper:

* **hot** — a small, heavily reused region (stack / scalars / hot hash
  buckets).  Hits in L1/L2; its *written* blocks are the fast-advancing
  counters of Table 2.
* **stream** — sequential strided sweeps over large arrays (the SPECfp
  pattern: applu, swim, mgrid, wupwise).  Produces L2 misses with strong
  spatial (and therefore encryption-page) locality.
* **random** — uniform references over a large working set (mcf's and
  art's pointer-chasing).  Produces L2 misses with poor page locality —
  the stressor for counter caches and Merkle node caches.
* **pages** — a hot set of pages revisited with intra-page locality
  (twolf/parser-style).  Misses cluster within 4KB regions.
* **thrash** — a small set of blocks laid out one L2-way-stride apart so
  they conflict in one cache set and evict each other on every round.
  Written blocks bounce between the L2 and memory, re-encrypting on every
  trip: these are the "small sets of blocks that are frequently written
  back" the paper observes in equake and twolf, and the fast-advancing
  counters whose growth rate Table 2 extrapolates from.

The weights, region sizes, and write ratios are the per-app profile knobs
(:mod:`repro.workloads.spec2k`).  Generation is seeded and deterministic.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.workloads.trace import Trace

BLOCK = 64
PAGE = 4096


@dataclass(frozen=True)
class WorkloadProfile:
    """Tunable description of one benchmark's memory behaviour."""

    name: str
    #: average non-memory instructions between references
    mean_gap: float = 2.0
    #: fraction of references that are stores
    write_fraction: float = 0.3
    #: mixture weights (hot, stream, random, pages); normalized internally
    w_hot: float = 0.55
    w_stream: float = 0.2
    w_random: float = 0.05
    w_pages: float = 0.2
    w_thrash: float = 0.0
    #: region sizes in bytes
    hot_bytes: int = 8 * 1024
    stream_bytes: int = 8 * 1024 * 1024
    random_bytes: int = 4 * 1024 * 1024
    page_pool_pages: int = 256
    #: spacing between pool pages, in pages.  1 = contiguous; 32 places
    #: consecutive pool pages one L2-way-stride (128KB) apart so that the
    #: pool conflicts in the cache and its blocks write back on every
    #: revisit — used to stage write-hot full pages for RSR experiments.
    page_stride: int = 1
    #: skew exponent for the random component: 1.0 = uniform; larger values
    #: concentrate references on a hot head of the region (Zipf-like reuse)
    random_skew: float = 1.0
    #: stream stride in bytes (8 = element-wise sweep touching each block
    #: eight times, 64 = block-per-reference streaming)
    stream_stride: int = 8
    #: how many distinct streams advance round-robin
    num_streams: int = 4
    #: accesses spent inside one page before moving on (pages component)
    page_burst: int = 16
    #: extra write probability for the hot component (drives counter growth)
    hot_write_fraction: float | None = None
    #: thrash component: blocks one L2-way-stride apart, written round-robin
    thrash_blocks: int = 12
    thrash_write_fraction: float = 0.9
    #: L2 way size (capacity / associativity) — sets the conflict stride
    l2_way_bytes: int = 128 * 1024

    def region_layout(self) -> dict[str, int]:
        """Base address of each component region (contiguous layout)."""
        hot_base = 0
        stream_base = hot_base + _round_page(self.hot_bytes)
        random_base = stream_base + _round_page(self.stream_bytes)
        pages_base = random_base + _round_page(self.random_bytes)
        thrash_base = (pages_base
                       + self.page_pool_pages * self.page_stride * PAGE)
        end = thrash_base + self.thrash_blocks * self.l2_way_bytes
        return {
            "hot": hot_base,
            "stream": stream_base,
            "random": random_base,
            "pages": pages_base,
            "thrash": thrash_base,
            "end": end,
        }

    @property
    def footprint_bytes(self) -> int:
        return self.region_layout()["end"]


def _round_page(n: int) -> int:
    return -(-n // PAGE) * PAGE


def generate_trace(profile: WorkloadProfile, num_refs: int,
                   seed: int = 1234) -> Trace:
    """Produce ``num_refs`` references following a profile.

    The same (profile, num_refs, seed) triple always yields the identical
    trace, so every benchmark config sees the same reference stream.
    """
    # zlib.crc32, not hash(): str hashing is salted per process, which
    # silently broke the determinism promise above across runs.
    rng = random.Random((zlib.crc32(profile.name.encode()) & 0xFFFF) ^ seed)
    layout = profile.region_layout()
    weights = [profile.w_hot, profile.w_stream, profile.w_random,
               profile.w_pages, profile.w_thrash]
    total_w = sum(weights)
    if total_w <= 0:
        raise ValueError("profile weights must sum to a positive value")
    cum = []
    acc = 0.0
    for w in weights:
        acc += w / total_w
        cum.append(acc)

    hot_blocks = max(1, profile.hot_bytes // BLOCK)
    stream_positions = [
        layout["stream"] + i * (profile.stream_bytes // profile.num_streams)
        for i in range(profile.num_streams)
    ]
    stream_limit = layout["stream"] + profile.stream_bytes
    random_blocks = max(1, profile.random_bytes // BLOCK)
    page_pool = profile.page_pool_pages
    current_page = layout["pages"]
    page_left = 0
    thrash_next = 0

    gaps: list[int] = []
    writes: list[bool] = []
    addrs: list[int] = []
    mean_gap = profile.mean_gap
    write_fraction = profile.write_fraction
    hot_wf = (profile.hot_write_fraction
              if profile.hot_write_fraction is not None
              else profile.write_fraction)

    for i in range(num_refs):
        r = rng.random()
        if r < cum[0]:
            # hot: zipf-ish reuse — square the uniform draw to skew small
            idx = int(rng.random() ** 2 * hot_blocks)
            addr = layout["hot"] + idx * BLOCK
            is_write = rng.random() < hot_wf
        elif r < cum[1]:
            s = i % profile.num_streams
            addr = stream_positions[s]
            stream_positions[s] += profile.stream_stride
            if stream_positions[s] >= stream_limit:
                stream_positions[s] = layout["stream"] + (
                    s * (profile.stream_bytes // profile.num_streams)
                )
            is_write = rng.random() < write_fraction
        elif r < cum[2]:
            idx = int(rng.random() ** profile.random_skew * random_blocks)
            addr = layout["random"] + idx * BLOCK
            is_write = rng.random() < write_fraction
        elif r < cum[3]:
            if page_left <= 0:
                current_page = layout["pages"] + (
                    rng.randrange(page_pool) * profile.page_stride * PAGE
                )
                page_left = profile.page_burst
            addr = current_page + rng.randrange(PAGE // BLOCK) * BLOCK
            page_left -= 1
            is_write = rng.random() < write_fraction
        else:
            addr = layout["thrash"] + thrash_next * profile.l2_way_bytes
            thrash_next = (thrash_next + 1) % profile.thrash_blocks
            is_write = rng.random() < profile.thrash_write_fraction
        gaps.append(int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 0 else 0)
        writes.append(is_write)
        addrs.append(addr)

    return Trace(name=profile.name, gaps=gaps, writes=writes, addrs=addrs)
