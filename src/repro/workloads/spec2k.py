"""Per-benchmark profiles approximating the SPEC CPU 2000 suite (Table 1).

The paper simulates 21 SPEC CPU 2000 applications (all but the Fortran-90
ones).  We cannot run SPEC binaries, so each benchmark is represented by a
:class:`WorkloadProfile` whose knobs are set from that application's
published memory character:

* the applications Figure 4 highlights as memory-bound (ammp, applu, art,
  equake, mgrid, swim, wupwise, mcf, parser, twolf) get large streaming or
  random working sets and low compute gaps — their L2 miss traffic is what
  memory encryption/authentication taxes;
* the Table 2 top-5 counter-growth apps (applu, art, equake, mcf, twolf)
  get thrash components whose block counts and weights order their
  fastest-counter rates the same way;
* equake and twolf follow the paper's observation of *small* frequently
  written-back sets with *below-average* total write-back rates;
* the rest (bzip2, crafty, eon, gap, gcc, gzip, perlbmk, vortex, vpr,
  apsi, mesa) are cache-resident and compute-bound.

Absolute miss rates and counter rates are tuned to the reproduction's
timing model, not to SPEC's exact numbers; DESIGN.md section 2 records the
substitution argument.
"""

from __future__ import annotations

from repro.workloads.generators import WorkloadProfile, generate_trace
from repro.workloads.trace import Trace

MB = 1024 * 1024

#: the Figure-4/7/9 individually plotted memory-bound applications
MEMORY_BOUND = (
    "ammp", "applu", "art", "equake", "mgrid", "swim", "wupwise",
    "mcf", "parser", "twolf",
)

#: Table 2's fastest-counter applications, in the paper's order
FAST_COUNTER_APPS = ("applu", "art", "equake", "mcf", "twolf")


def _compute_bound(name: str, gap: float = 5.0, hot_kb: int = 12,
                   **kw) -> WorkloadProfile:
    """Cache-resident profile: working set fits on-chip after warm-up."""
    defaults = dict(
        mean_gap=gap, write_fraction=0.30,
        w_hot=0.89, w_stream=0.004, w_random=0.002, w_pages=0.1032,
        w_thrash=0.0008,
        hot_bytes=hot_kb * 1024, stream_bytes=64 * 1024,
        random_bytes=64 * 1024, random_skew=3.0,
        page_pool_pages=16, thrash_blocks=24, thrash_write_fraction=0.4,
    )
    defaults.update(kw)
    return WorkloadProfile(name=name, **defaults)


def _streaming_fp(name: str, stream_mb: int = 12, gap: float = 5.0,
                  **kw) -> WorkloadProfile:
    """SPECfp solver profile: element-wise sweeps over large arrays."""
    defaults = dict(
        mean_gap=gap, write_fraction=0.33,
        w_hot=0.56, w_stream=0.22, w_random=0.02, w_pages=0.19,
        w_thrash=0.006,
        hot_bytes=16 * 1024, stream_bytes=stream_mb * MB,
        random_bytes=2 * MB, random_skew=2.5, page_pool_pages=128,
        thrash_blocks=12, thrash_write_fraction=0.8,
    )
    defaults.update(kw)
    return WorkloadProfile(name=name, **defaults)


PROFILES: dict[str, WorkloadProfile] = {
    # ---- SPECfp 2000 ------------------------------------------------------
    "applu": _streaming_fp("applu", stream_mb=14, w_thrash=0.016,
                           thrash_blocks=12, thrash_write_fraction=0.95),
    "swim": _streaming_fp("swim", stream_mb=16, w_stream=0.26, w_hot=0.52,
                          w_thrash=0.007),
    "mgrid": _streaming_fp("mgrid", stream_mb=12, w_stream=0.20,
                           w_thrash=0.006),
    "wupwise": _streaming_fp("wupwise", stream_mb=10, w_stream=0.18,
                             w_hot=0.60, w_thrash=0.006),
    "equake": _streaming_fp(
        # sparse solver: moderate streaming, small hot write-back set,
        # below-average total write-back rate (write_fraction lowered)
        "equake", stream_mb=8, gap=5.2, write_fraction=0.22,
        w_stream=0.17, w_random=0.03, w_thrash=0.014,
        thrash_blocks=12, thrash_write_fraction=0.95,
    ),
    "art": WorkloadProfile(
        # neural-net scan: skewed random touches over a multi-MB array
        name="art", mean_gap=4.4, write_fraction=0.30,
        w_hot=0.61, w_stream=0.08, w_random=0.07, w_pages=0.225,
        w_thrash=0.015, hot_bytes=16 * 1024, stream_bytes=4 * MB,
        random_bytes=4 * MB, random_skew=2.2, page_pool_pages=96,
        thrash_blocks=12, thrash_write_fraction=0.95,
    ),
    "ammp": WorkloadProfile(
        name="ammp", mean_gap=5.0, write_fraction=0.32,
        w_hot=0.61, w_stream=0.13, w_random=0.02, w_pages=0.23,
        w_thrash=0.006, hot_bytes=24 * 1024, stream_bytes=6 * MB,
        random_bytes=3 * MB, random_skew=2.5, page_pool_pages=128,
        thrash_blocks=12, thrash_write_fraction=0.8,
    ),
    "apsi": _compute_bound("apsi", gap=4.0, hot_kb=24, w_stream=0.02,
                           stream_bytes=512 * 1024, w_hot=0.83),
    "mesa": _compute_bound("mesa", gap=4.5, hot_kb=20, w_pages=0.12,
                           w_hot=0.79),
    # ---- SPECint 2000 -----------------------------------------------------
    "mcf": WorkloadProfile(
        # pointer-chasing over a huge graph: dominated by random misses
        name="mcf", mean_gap=4.2, write_fraction=0.26,
        w_hot=0.53, w_stream=0.03, w_random=0.055, w_pages=0.373,
        w_thrash=0.012, hot_bytes=16 * 1024, stream_bytes=2 * MB,
        random_bytes=8 * MB, random_skew=1.0, page_pool_pages=128,
        thrash_blocks=12, thrash_write_fraction=0.9,
    ),
    "parser": WorkloadProfile(
        name="parser", mean_gap=5.0, write_fraction=0.30,
        w_hot=0.58, w_stream=0.03, w_random=0.05, w_pages=0.335,
        w_thrash=0.005, hot_bytes=24 * 1024, stream_bytes=1 * MB,
        random_bytes=3 * MB, random_skew=2.8, page_pool_pages=96,
        thrash_blocks=16, thrash_write_fraction=0.6,
    ),
    "twolf": WorkloadProfile(
        # place-and-route: small hot structures rewritten constantly,
        # modest overall traffic (below-average write-back rate)
        name="twolf", mean_gap=4.8, write_fraction=0.24,
        w_hot=0.60, w_stream=0.02, w_random=0.04, w_pages=0.329,
        w_thrash=0.011, hot_bytes=20 * 1024, stream_bytes=1 * MB,
        random_bytes=2 * MB, random_skew=2.6, page_pool_pages=144,
        thrash_blocks=12, thrash_write_fraction=0.95,
    ),
    "vpr": _compute_bound("vpr", gap=3.6, hot_kb=20, w_pages=0.14,
                          w_hot=0.71, w_random=0.015, random_bytes=256 * 1024),
    "vortex": _compute_bound("vortex", gap=3.8, hot_kb=24, w_pages=0.14,
                             w_hot=0.70),
    "gcc": _compute_bound("gcc", gap=3.5, hot_kb=32, w_pages=0.16,
                          w_hot=0.68, w_random=0.01, random_bytes=512 * 1024),
    "gap": _compute_bound("gap", gap=4.2, hot_kb=16),
    "gzip": _compute_bound("gzip", gap=4.6, hot_kb=12, w_stream=0.02,
                           stream_bytes=512 * 1024),
    "bzip2": _compute_bound("bzip2", gap=4.4, hot_kb=16, w_stream=0.025,
                            stream_bytes=1 * MB),
    "crafty": _compute_bound("crafty", gap=5.5, hot_kb=10),
    "eon": _compute_bound("eon", gap=6.0, hot_kb=8),
    "perlbmk": _compute_bound("perlbmk", gap=4.8, hot_kb=16),
}

SPEC_APPS: tuple[str, ...] = tuple(sorted(PROFILES))

if len(SPEC_APPS) != 21:  # pragma: no cover - structural guarantee
    raise RuntimeError(f"expected 21 SPEC profiles, found {len(SPEC_APPS)}")

#: default measurement window (references) and warm-up prefix
DEFAULT_TRACE_REFS = 120_000
DEFAULT_WARMUP_REFS = 40_000


def profile_for(app: str) -> WorkloadProfile:
    """Look up a benchmark profile by SPEC application name."""
    try:
        return PROFILES[app]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {app!r}; choose from {', '.join(SPEC_APPS)}"
        ) from None


def spec_trace(app: str, num_refs: int = DEFAULT_TRACE_REFS,
               seed: int = 1234) -> Trace:
    """Generate the deterministic trace used for one benchmark."""
    return generate_trace(profile_for(app), num_refs, seed=seed)
