"""SPEC CPU 2000-like synthetic workloads for the timing simulator."""

from repro.workloads.generators import WorkloadProfile, generate_trace
from repro.workloads.spec2k import (
    FAST_COUNTER_APPS,
    MEMORY_BOUND,
    PROFILES,
    SPEC_APPS,
    profile_for,
    spec_trace,
)
from repro.workloads.trace import Trace

__all__ = [
    "FAST_COUNTER_APPS",
    "MEMORY_BOUND",
    "PROFILES",
    "SPEC_APPS",
    "Trace",
    "WorkloadProfile",
    "generate_trace",
    "profile_for",
    "spec_trace",
]
