"""SPEC CPU 2000-like synthetic workloads for the timing simulator."""

from repro.workloads.generators import WorkloadProfile, generate_trace
from repro.workloads.scenarios import (
    SCENARIO_APPS,
    SCENARIOS,
    canonical_workload_id,
    is_trace_workload,
    resolve_trace,
    scenario_trace,
    trace_path_of,
    workload_kind,
    workload_names,
)
from repro.workloads.spec2k import (
    FAST_COUNTER_APPS,
    MEMORY_BOUND,
    PROFILES,
    SPEC_APPS,
    profile_for,
    spec_trace,
)
from repro.workloads.trace import Trace
from repro.workloads.tracefile import (
    TraceFileError,
    TraceWriter,
    iter_records,
    load_trace,
    mmap_records,
    read_header,
    trace_fingerprint,
    write_trace,
)

__all__ = [
    "FAST_COUNTER_APPS",
    "MEMORY_BOUND",
    "PROFILES",
    "SCENARIO_APPS",
    "SCENARIOS",
    "SPEC_APPS",
    "Trace",
    "TraceFileError",
    "TraceWriter",
    "WorkloadProfile",
    "canonical_workload_id",
    "generate_trace",
    "is_trace_workload",
    "iter_records",
    "load_trace",
    "mmap_records",
    "profile_for",
    "read_header",
    "resolve_trace",
    "scenario_trace",
    "spec_trace",
    "trace_fingerprint",
    "trace_path_of",
    "workload_kind",
    "workload_names",
    "write_trace",
]
