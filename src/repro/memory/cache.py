"""Generic set-associative write-back cache model.

This single cache class backs every on-chip cache in the reproduction: the
L1 instruction/data caches, the unified L2, the 32KB counter cache, and the
cache of Merkle-tree nodes.  It tracks tags, LRU order, dirty bits, and an
optional per-line payload (used by the functional layer to hold real bytes,
and by the counter cache to hold counter-block contents).

The model is deliberately state-only: it answers "hit or miss, and what got
evicted" and leaves all latency accounting to the timing simulator, so the
same instance serves both the functional and timing layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import reset_fields


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class CacheLine:
    """One cache line: tag plus state bits and an optional payload."""

    tag: int
    dirty: bool = False
    payload: Any = None


@dataclass
class Eviction:
    """Describes a line displaced by a fill."""

    address: int
    dirty: bool
    payload: Any = None


@dataclass
class CacheStats:
    """Access counters, reset-able between measurement intervals."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0

    def reset(self) -> None:
        reset_fields(self)


class Cache:
    """Set-associative write-back cache with true-LRU replacement.

    Parameters mirror the paper's setup (section 5): ``size_bytes`` total
    capacity, ``assoc`` ways, ``block_size`` bytes per line (64 in all
    configurations evaluated).
    """

    def __init__(self, size_bytes: int, assoc: int, block_size: int,
                 name: str = "cache"):
        if not _is_pow2(block_size):
            raise ValueError("block_size must be a power of two")
        if size_bytes % (assoc * block_size):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*block_size = {assoc * block_size}"
            )
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_size = block_size
        self.name = name
        self.num_sets = size_bytes // (assoc * block_size)
        if not _is_pow2(self.num_sets):
            raise ValueError(f"{name}: number of sets must be a power of two")
        # Each set is a list of CacheLine ordered most- to least-recently used.
        self._sets: list[list[CacheLine]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- address helpers ---------------------------------------------------

    def block_address(self, address: int) -> int:
        """Align an address down to its containing block."""
        return address & ~(self.block_size - 1)

    def _index_tag(self, address: int) -> tuple[int, int]:
        block = address // self.block_size
        return block % self.num_sets, block // self.num_sets

    def _line_address(self, set_index: int, tag: int) -> int:
        return (tag * self.num_sets + set_index) * self.block_size

    # -- lookup / fill -----------------------------------------------------

    def lookup(self, address: int) -> CacheLine | None:
        """Non-statistical probe: return the line if present, else None.

        Does not update LRU order or hit/miss counters; used by hardware
        structures (RSRs, Merkle engine) that peek without touching state.
        """
        set_index, tag = self._index_tag(address)
        for line in self._sets[set_index]:
            if line.tag == tag:
                return line
        return None

    def contains(self, address: int) -> bool:
        """True when the block holding ``address`` is resident."""
        return self.lookup(address) is not None

    def access(self, address: int, write: bool = False) -> bool:
        """Reference a block: returns True on hit, False on miss.

        On a hit the line moves to MRU position and, for writes, is marked
        dirty.  A miss updates statistics only — callers decide whether and
        when to ``fill`` (modelling the fill as a separate step lets the
        timing layer order the memory transactions correctly).
        """
        set_index, tag = self._index_tag(address)
        lines = self._sets[set_index]
        for i, line in enumerate(lines):
            if line.tag == tag:
                lines.insert(0, lines.pop(i))
                if write:
                    line.dirty = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        return False

    def fill(self, address: int, dirty: bool = False,
             payload: Any = None) -> Eviction | None:
        """Install a block, returning the eviction it displaces (if any)."""
        set_index, tag = self._index_tag(address)
        lines = self._sets[set_index]
        for i, line in enumerate(lines):
            if line.tag == tag:  # refill of a resident block: refresh it
                lines.insert(0, lines.pop(i))
                line.dirty = line.dirty or dirty
                if payload is not None:
                    line.payload = payload
                return None
        evicted = None
        if len(lines) >= self.assoc:
            victim = lines.pop()  # LRU
            if victim.dirty:
                self.stats.writebacks += 1
            evicted = Eviction(
                address=self._line_address(set_index, victim.tag),
                dirty=victim.dirty,
                payload=victim.payload,
            )
        lines.insert(0, CacheLine(tag=tag, dirty=dirty, payload=payload))
        return evicted

    def invalidate(self, address: int) -> CacheLine | None:
        """Remove a block without writing it back; returns the removed line."""
        set_index, tag = self._index_tag(address)
        lines = self._sets[set_index]
        for i, line in enumerate(lines):
            if line.tag == tag:
                return lines.pop(i)
        return None

    def mark_dirty(self, address: int) -> bool:
        """Set the dirty bit of a resident block (used by lazy re-encryption)."""
        line = self.lookup(address)
        if line is None:
            return False
        line.dirty = True
        return True

    # -- introspection -----------------------------------------------------

    def resident_blocks(self) -> Iterator[tuple[int, CacheLine]]:
        """Yield (block_address, line) for every resident block."""
        for set_index, lines in enumerate(self._sets):
            for line in lines:
                yield self._line_address(set_index, line.tag), line

    def dirty_blocks(self) -> Iterator[tuple[int, CacheLine]]:
        """Yield (block_address, line) for every dirty resident block."""
        for address, line in self.resident_blocks():
            if line.dirty:
                yield address, line

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(lines) for lines in self._sets)

    def flush(self) -> list[Eviction]:
        """Evict everything; returns the dirty blocks as Evictions."""
        dirty = [
            Eviction(address=addr, dirty=True, payload=line.payload)
            for addr, line in self.dirty_blocks()
        ]
        self._sets = [[] for _ in range(self.num_sets)]
        return dirty

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable state: per-set lines in MRU order, plus stats.

        Payloads are carried as bytes (``None`` for payload-less lines);
        :meth:`load_state` restores them as fresh ``bytearray`` buffers —
        payload identity is not preserved, only content and order.
        """
        return {
            "sets": [
                [
                    {
                        "tag": line.tag,
                        "dirty": line.dirty,
                        "payload": (bytes(line.payload)
                                    if line.payload is not None else None),
                    }
                    for line in lines
                ]
                for lines in self._sets
            ],
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "writebacks": self.stats.writebacks,
            },
        }

    def load_state(self, state: dict) -> None:
        self._sets = [
            [
                CacheLine(
                    tag=entry["tag"],
                    dirty=entry["dirty"],
                    payload=(bytearray(entry["payload"])
                             if entry["payload"] is not None else None),
                )
                for entry in lines
            ]
            for lines in state["sets"]
        ]
        st = state["stats"]
        self.stats.hits = st["hits"]
        self.stats.misses = st["misses"]
        self.stats.writebacks = st["writebacks"]

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}: {self.size_bytes}B, {self.assoc}-way, "
            f"{self.block_size}B blocks, {self.num_sets} sets)"
        )
