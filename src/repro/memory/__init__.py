"""Memory-system substrate: caches, main memory, and the memory bus."""

from repro.memory.bus import BusStats, MemoryBus
from repro.memory.cache import Cache, CacheLine, CacheStats, Eviction
from repro.memory.dram import DRAMStats, MainMemory

__all__ = [
    "BusStats",
    "Cache",
    "CacheLine",
    "CacheStats",
    "DRAMStats",
    "Eviction",
    "MainMemory",
    "MemoryBus",
]
