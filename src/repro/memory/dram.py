"""Main-memory model: functional backing store plus latency parameters.

The paper's simulated memory system (section 5) has an uncontended 200
processor-cycle round-trip below the bus.  The backing store here is a
sparse block-granular byte store: the secure-memory layer reads and writes
real ciphertext blocks, counter blocks, and Merkle-code blocks, which is
what makes the attack experiments (snooping the DRAM image, tampering with
it, rolling counters back) meaningful.

An off-chip adversary sees and may modify everything in this store; nothing
in it is trusted.  The processor-side structures (caches, registers, the
Merkle root) live elsewhere and are trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.obs.metrics import reset_fields


@dataclass
class DRAMStats:
    """Traffic counters for the memory device."""

    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        reset_fields(self)


class MainMemory:
    """Sparse block-granular main memory with a fixed access latency.

    ``read_block``/``write_block`` move whole cache blocks, mirroring the
    bus transactions the timing model charges for.  Unwritten blocks read
    as zero-fill, like freshly allocated physical pages.
    """

    def __init__(self, size_bytes: int = 512 * 1024 * 1024,
                 block_size: int = 64, latency_cycles: int = 200):
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.latency_cycles = latency_cycles
        self._blocks: dict[int, bytes] = {}
        self.stats = DRAMStats()

    def _check(self, address: int) -> None:
        if address % self.block_size:
            raise ValueError(
                f"address {address:#x} not {self.block_size}-byte aligned"
            )
        if not 0 <= address < self.size_bytes:
            raise ValueError(
                f"address {address:#x} outside {self.size_bytes}-byte memory"
            )

    def read_block(self, address: int) -> bytes:
        """Fetch one block; absent blocks read as zeros."""
        self._check(address)
        self.stats.reads += 1
        return self._blocks.get(address, bytes(self.block_size))

    def write_block(self, address: int, data: bytes) -> None:
        """Store one block."""
        self._check(address)
        if len(data) != self.block_size:
            raise ValueError(
                f"block must be {self.block_size} bytes, got {len(data)}"
            )
        self.stats.writes += 1
        self._blocks[address] = bytes(data)

    # -- adversary interface (used by repro.attacks) -----------------------

    def peek(self, address: int) -> bytes:
        """Read a block without touching statistics (bus snooper's view)."""
        self._check(address)
        return self._blocks.get(address, bytes(self.block_size))

    def poke(self, address: int, data: bytes) -> None:
        """Overwrite a block without touching statistics (active attacker)."""
        self._check(address)
        if len(data) != self.block_size:
            raise ValueError("tampered block must be block-sized")
        self._blocks[address] = bytes(data)

    def stored_blocks(self) -> dict[int, bytes]:
        """Snapshot of every block ever written — the attacker's recording."""
        return dict(self._blocks)

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "blocks": dict(self._blocks),
            "stats": {"reads": self.stats.reads,
                      "writes": self.stats.writes},
        }

    def load_state(self, state: dict) -> None:
        # Mutate (never rebind) the live dict/stats: wrappers that adopted
        # them via :meth:`transplant_from` must keep observing this memory.
        self._blocks.clear()
        self._blocks.update(
            {addr: bytes(data) for addr, data in state["blocks"].items()}
        )
        self.stats.reads = state["stats"]["reads"]
        self.stats.writes = state["stats"]["writes"]

    def transplant_from(self, other: "MainMemory") -> None:
        """Adopt another device's backing store and statistics in place.

        The block dictionary and stats objects are *shared*, not copied, so
        a wrapper (e.g. :class:`repro.testing.AdversarialDRAM`) can be
        swapped under a live system without losing state, and anything still
        holding the old device observes the same memory image.
        """
        if other.block_size != self.block_size:
            raise ValueError("block sizes differ")
        self.size_bytes = other.size_bytes
        self._blocks = other._blocks
        self.stats = other.stats
