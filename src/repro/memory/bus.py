"""Processor-memory bus occupancy and contention model.

Section 5 of the paper: the data bus is 128 bits wide at 600 MHz under a
5 GHz core, so one bus beat moves 16 bytes and lasts 5000/600 ≈ 8.33
processor cycles; a 64-byte block transfer occupies the bus for about 33
processor cycles.  Counter-mode schemes add counter-block and Merkle-node
transfers on top of data transfers, and this extra occupancy — not just
latency — is what hurts memory-bound applications (the paper calls this out
for mcf under GCM, and for the prediction scheme's 64-bit counter fetches).

The model is first-come-first-served: each transaction reserves the bus from
``max(now, free_at)`` for its transfer time.  Queueing delay therefore
emerges naturally when several transactions (data + counters + MACs) pile up
on one miss, or when misses from the overlap window collide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import reset_fields
from repro.obs.tracer import Tracer


@dataclass
class BusStats:
    """Aggregate occupancy for utilization reporting."""

    transactions: int = 0
    bytes_moved: int = 0
    busy_cycles: float = 0.0
    queue_cycles: float = 0.0

    def reset(self) -> None:
        reset_fields(self)


class MemoryBus:
    """FCFS shared bus with per-byte transfer cost in core cycles."""

    #: optional observability hook; a profiling run swaps in a recording
    #: tracer so every transfer becomes a span on the "bus" track
    tracer: Tracer | None = None

    def __init__(self, width_bits: int = 128, bus_mhz: float = 600.0,
                 core_mhz: float = 5000.0):
        self.width_bytes = width_bits // 8
        self.cycles_per_beat = core_mhz / bus_mhz
        self._free_at = 0.0
        self.stats = BusStats()

    def transfer_cycles(self, num_bytes: int) -> float:
        """Core cycles of bus occupancy to move ``num_bytes``."""
        beats = -(-num_bytes // self.width_bytes)  # ceil division
        return beats * self.cycles_per_beat

    def schedule(self, now: float, num_bytes: int) -> tuple[float, float]:
        """Reserve the bus for a transfer requested at ``now``.

        Returns ``(start, end)`` in core cycles.  ``start`` includes any
        queueing delay behind earlier transfers; ``end`` is when the last
        beat completes.
        """
        start = max(now, self._free_at)
        occupancy = self.transfer_cycles(num_bytes)
        end = start + occupancy
        self._free_at = end
        self.stats.transactions += 1
        self.stats.bytes_moved += num_bytes
        self.stats.busy_cycles += occupancy
        self.stats.queue_cycles += start - now
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.span("bus", "xfer", start, end, bytes=num_bytes,
                        queued=start - now)
        return start, end

    def charge_background(self, num_bytes: int) -> float:
        """Account for a low-priority transfer without blocking the queue.

        Hardware memory controllers prioritize demand misses over
        background activity such as RSR page re-encryption; the background
        transfer's bandwidth is consumed (visible in utilization and byte
        counts) but it does not delay later demand transactions.  Returns
        the transfer's occupancy in core cycles.
        """
        occupancy = self.transfer_cycles(num_bytes)
        self.stats.transactions += 1
        self.stats.bytes_moved += num_bytes
        self.stats.busy_cycles += occupancy
        return occupancy

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of ``elapsed_cycles`` the bus spent busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        self._free_at = 0.0
        self.stats.reset()

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "free_at": self._free_at,
            "stats": {
                "transactions": self.stats.transactions,
                "bytes_moved": self.stats.bytes_moved,
                "busy_cycles": self.stats.busy_cycles,
                "queue_cycles": self.stats.queue_cycles,
            },
        }

    def load_state(self, state: dict) -> None:
        self._free_at = state["free_at"]
        st = state["stats"]
        self.stats.transactions = st["transactions"]
        self.stats.bytes_moved = st["bytes_moved"]
        self.stats.busy_cycles = st["busy_cycles"]
        self.stats.queue_cycles = st["queue_cycles"]
