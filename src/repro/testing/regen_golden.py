"""Regenerate the cycle-exact golden fixtures under ``tests/sim/golden/``.

Usage::

    PYTHONPATH=src python -m repro.testing.regen_golden

One JSON file per registered preset pins the *scalar* engine's observable
behaviour on a fixed seeded trace: final cycles, normalized IPC against
the no-protection baseline, the full metrics snapshot, the ``SimResult``
stat counters, and the summed :class:`~repro.obs.attribution.MissRecord`
PathTime fields over the first :data:`PATHTIME_MISSES` post-warmup L2
misses.  ``tests/sim/test_golden_traces.py`` replays the same runs and
asserts bit-for-bit equality (floats compare with ``==``, no tolerance),
so any timing-model change — deliberate or accidental — shows up as a
fixture diff.  After a *deliberate* change, rerun this module and commit
the JSON diffs alongside the code.

The fixtures are engine-agnostic by construction: the batched engine is
held to the same numbers by the differential suite in
``tests/sim/test_engine_equivalence.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import get_config
from repro.core.config import PRESETS, baseline_config
from repro.obs.tracer import RecordingTracer
from repro.sim.processor import Processor
from repro.workloads import PROFILES, generate_trace

#: Fixture trace: app profile, length, warmup, and generator seed.  Changing
#: any of these invalidates every fixture — rerun the regeneration.
GOLDEN_APP = "swim"
GOLDEN_REFS = 6000
GOLDEN_WARMUP = 1000
GOLDEN_SEED = 20060613

#: How many post-warmup misses contribute to the PathTime sums.
PATHTIME_MISSES = 64

GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "sim" / "golden"


def golden_trace():
    """The one fixed trace every fixture is computed on."""
    return generate_trace(PROFILES[GOLDEN_APP], GOLDEN_REFS, seed=GOLDEN_SEED)


def compute_fixture(preset: str, trace, baseline_ipc: float) -> dict:
    """Run ``preset`` under the scalar engine and collect the pinned values.

    Two runs: one bare (cycles, counters, metrics — the tracer is kept out
    of the timed run the fixtures pin), one with a strict
    :class:`RecordingTracer` for the PathTime sums.  The second run must
    reproduce the first's cycle count — tracing is observability only —
    and we assert that here so a fixture can never be internally split.
    """
    p = Processor(get_config(preset, sim_engine="scalar"))
    r = p.run(trace, warmup_refs=GOLDEN_WARMUP)
    snapshot = p.metrics.snapshot()

    tracer = RecordingTracer()
    pt = Processor(get_config(preset, sim_engine="scalar"), tracer=tracer)
    rt = pt.run(trace, warmup_refs=GOLDEN_WARMUP)
    assert rt.cycles == r.cycles, (
        f"{preset}: tracer perturbed timing ({rt.cycles} != {r.cycles})"
    )
    head = tracer.misses[:PATHTIME_MISSES]
    pathtime = {
        "misses_recorded": len(tracer.misses),
        "n": len(head),
        "sum_issue": sum(m.issue for m in head),
        "sum_data_ready": sum(m.data_ready for m in head),
        "sum_auth_done": sum(m.auth_done for m in head),
        "sum_parts": sum(sum(m.parts.values()) for m in head),
    }

    ipc = r.instructions / r.cycles if r.cycles else 0.0
    return {
        "preset": preset,
        "trace": {
            "app": GOLDEN_APP,
            "refs": GOLDEN_REFS,
            "warmup": GOLDEN_WARMUP,
            "seed": GOLDEN_SEED,
        },
        "cycles": r.cycles,
        "instructions": r.instructions,
        "normalized_ipc": (ipc / baseline_ipc) if baseline_ipc else
        float("nan"),
        "result": {
            "l1_hits": r.l1_hits,
            "l1_misses": r.l1_misses,
            "l2_hits": r.l2_hits,
            "l2_misses": r.l2_misses,
            "writebacks": r.writebacks,
        },
        "metrics": snapshot,
        "pathtime": pathtime,
    }


def baseline_ipc_for(trace) -> float:
    base = Processor(baseline_config())
    rb = base.run(trace, warmup_refs=GOLDEN_WARMUP)
    return rb.instructions / rb.cycles if rb.cycles else 0.0


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    trace = golden_trace()
    base_ipc = baseline_ipc_for(trace)
    for preset in sorted(PRESETS):
        fixture = compute_fixture(preset, trace, base_ipc)
        path = GOLDEN_DIR / f"{preset}.json"
        path.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(GOLDEN_DIR.parents[2])}"
              f"  cycles={fixture['cycles']}")
    print(f"{len(PRESETS)} fixtures in {GOLDEN_DIR}")


if __name__ == "__main__":
    main()
