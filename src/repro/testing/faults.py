"""Adversarial memory devices: seeded, schedulable bus-level fault injection.

The paper's threat model gives the adversary the memory bus and the DRAM —
everything below the processor chip.  :class:`AdversarialDRAM` is a
:class:`~repro.memory.dram.MainMemory` that plays that adversary
*deterministically*: armed :class:`FaultSpec`\\ s fire at programmable
points (the nth DRAM access, the nth access matching an address predicate
or region, or immediately when the harness reaches an operation boundary)
and mutate the stored image the way a bus attacker would:

* ``bit-flip``       — flip 1..k bits of a stored block (transmission or
  row-hammer-style corruption);
* ``splice``         — swap the ciphertext images of two addresses
  (relocation attack);
* ``replay``         — roll one block back to a previously recorded image
  (stale-data replay; the device records every version ever written);
* ``counter-rollback`` — the same rollback aimed at the counter region,
  the section-4.3 pitfall;
* ``node-corrupt``   — corrupt a Merkle code block (MAC/tree tampering);
* ``relocate``       — copy one block's ciphertext over another address
  (Buhren-style relocation: one-way, unlike ``splice``'s swap — the
  attack that only an address-bound MAC can catch);
* ``cold-boot``      — seeded per-bit decay over the whole stored DRAM
  image (Simmons, "Security Through Amnesia": set bits relax toward the
  ground state with probability ``decay``).

Faults never consult wall-clock or global randomness: every choice (target
address, bit positions, replayed version) comes from the
:class:`random.Random` instance the harness seeded, so a campaign replays
bit-for-bit from its seed.

:class:`AdversarialBus` is the timing twin: a
:class:`~repro.memory.bus.MemoryBus` that records the full transaction
trace and can deterministically jam the bus with attacker transfers —
useful for reasoning about contention-based interference, and for asserting
that two runs of one seed produce identical traffic.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.memory.bus import MemoryBus
from repro.memory.dram import MainMemory


class FaultKind(enum.Enum):
    """The adversarial-memory fault taxonomy."""

    BIT_FLIP = "bit-flip"
    SPLICE = "splice"
    REPLAY = "replay"
    COUNTER_ROLLBACK = "counter-rollback"
    NODE_CORRUPT = "node-corrupt"
    #: a *transient* corruption: the next ``duration`` reads of the target
    #: return a bit-flipped view, but the stored image is never mutated —
    #: a re-read past the glitch sees good bytes (bus noise, not tampering)
    TRANSIENT_FLIP = "transient-flip"
    #: copy one data block's ciphertext over another address (one-way
    #: relocation; detected only by schemes whose MAC binds the address)
    RELOCATE = "relocate"
    #: whole-device snapshot decay: every stored set bit flips to the
    #: ground state with probability ``FaultSpec.decay``
    COLD_BOOT = "cold-boot"


#: Region names understood by triggers and target selection.  ``data`` is
#: the protected plaintext-owner region, ``counter`` the counter blocks,
#: ``code`` the Merkle code blocks, ``any`` the whole device.
REGIONS = ("data", "counter", "code", "any")


@dataclass(frozen=True)
class Trigger:
    """When a fault fires.

    ``count`` is 1-based: the fault fires on the ``count``-th DRAM access
    that matches ``kind`` (``access`` / ``read`` / ``write``) *and* the
    region / address / predicate filters.  A DRAM write is exactly a
    post-eviction write-back in this system, so ``kind="write"`` is the
    "after the victim's dirty line leaves the chip" hook.  ``predicate``
    (address -> bool) supports arbitrary address conditions but is not
    serializable; generated campaigns stick to the declarative fields.
    """

    count: int = 1
    kind: str = "access"            # "access" | "read" | "write"
    region: str = "any"
    address: int | None = None
    predicate: Callable[[int], bool] | None = None

    def to_dict(self) -> dict:
        return {"count": self.count, "kind": self.kind,
                "region": self.region, "address": self.address}

    @classmethod
    def from_dict(cls, data: dict) -> "Trigger":
        return cls(count=data.get("count", 1),
                   kind=data.get("kind", "access"),
                   region=data.get("region", "any"),
                   address=data.get("address"))


@dataclass(frozen=True)
class FaultSpec:
    """One schedulable fault.

    ``trigger`` arms the fault inside :class:`AdversarialDRAM`;
    alternatively a harness can fire the spec directly at an operation
    boundary with :meth:`AdversarialDRAM.fire_now` (shrink-stable
    injection).  ``address`` / ``partner`` pin targets; left ``None``,
    targets are drawn from the seeded RNG among eligible blocks at fire
    time.  ``bits`` is the number of bit flips for the corruption kinds.
    """

    kind: FaultKind
    trigger: Trigger | None = None
    address: int | None = None
    partner: int | None = None      # second address for SPLICE / RELOCATE
    bits: int = 1
    duration: int = 1               # corrupted reads for TRANSIENT_FLIP
    decay: float = 0.02             # per-bit decay probability (COLD_BOOT)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "trigger": self.trigger.to_dict() if self.trigger else None,
            "address": self.address,
            "partner": self.partner,
            "bits": self.bits,
            "duration": self.duration,
            "decay": self.decay,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        trigger = data.get("trigger")
        return cls(
            kind=FaultKind(data["kind"]),
            trigger=Trigger.from_dict(trigger) if trigger else None,
            address=data.get("address"),
            partner=data.get("partner"),
            bits=data.get("bits", 1),
            duration=data.get("duration", 1),
            decay=data.get("decay", 0.02),
        )


@dataclass
class FaultEvent:
    """A fault that actually fired, with everything needed to replay it."""

    spec: FaultSpec
    address: int
    access_index: int               # device access count at fire time
    detail: str = ""
    partner: int | None = None
    flipped_bits: tuple[int, ...] = ()
    replayed_version: int = -1

    def to_dict(self) -> dict:
        return {
            "kind": self.spec.kind.value,
            "address": self.address,
            "partner": self.partner,
            "access_index": self.access_index,
            "detail": self.detail,
        }


class FaultSkipped(Exception):
    """Raised internally when a fired fault has no eligible target."""


class AdversarialDRAM(MainMemory):
    """Main memory that doubles as a deterministic bus-level adversary.

    Construct it directly (same signature as :class:`MainMemory`, plus
    ``rng``) and pass it via ``SecureMemorySystem(dram_factory=...)``, or
    wrap an already-built system with :meth:`wrap`.  Call
    :meth:`set_layout` so region-scoped faults know where the data /
    counter / Merkle-code regions live; :meth:`wrap` does this
    automatically.
    """

    def __init__(self, size_bytes: int = 512 * 1024 * 1024,
                 block_size: int = 64, latency_cycles: int = 200,
                 rng: random.Random | None = None):
        super().__init__(size_bytes=size_bytes, block_size=block_size,
                         latency_cycles=latency_cycles)
        self.rng = rng if rng is not None else random.Random(0)
        self.accesses = 0
        self._armed: list[dict] = []    # {"spec": FaultSpec, "seen": int}
        self.events: list[FaultEvent] = []
        self.skipped: list[FaultSpec] = []
        self._history: dict[int, list[bytes]] = {}
        # address -> [corrupted image, remaining corrupted reads]; consumed
        # by read_block without ever touching the stored image
        self._transient: dict[int, list] = {}
        self._regions: dict[str, tuple[int, int]] = {
            "any": (0, self.size_bytes)
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def wrap(cls, system, rng: random.Random | None = None
             ) -> "AdversarialDRAM":
        """Swap an adversarial device under a live SecureMemorySystem.

        The existing backing store and stats are adopted (shared, not
        copied), the region layout is read off the system, and every
        internal reference — the system's and the Merkle tree's — is
        repointed at the wrapper.
        """
        old = system.dram
        device = cls(size_bytes=old.size_bytes, block_size=old.block_size,
                     latency_cycles=old.latency_cycles, rng=rng)
        device.transplant_from(old)
        for address, image in device._blocks.items():
            device._history[address] = [image]
        device.set_layout(system.protected_bytes,
                          system._code_region_base, old.size_bytes)
        system.dram = device
        if system.merkle is not None:
            system.merkle.dram = device
        return device

    def set_layout(self, data_end: int, code_base: int, total: int) -> None:
        """Declare the region map used by region-scoped faults."""
        self._regions = {
            "data": (0, data_end),
            "counter": (data_end, code_base),
            "code": (code_base, total),
            "any": (0, total),
        }

    # -- scheduling --------------------------------------------------------

    def arm(self, spec: FaultSpec) -> None:
        """Arm a one-shot fault; it fires when its trigger matches."""
        if spec.trigger is None:
            raise ValueError("arm() needs a spec with a trigger; use "
                             "fire_now() for operation-boundary injection")
        self._armed.append({"spec": spec, "seen": 0})

    def fire_now(self, spec: FaultSpec) -> FaultEvent | None:
        """Apply a fault immediately (operation-boundary injection).

        Returns the :class:`FaultEvent`, or ``None`` when no eligible
        target exists yet (the spec is recorded in :attr:`skipped`).
        """
        try:
            event = self._apply(spec)
        except FaultSkipped:
            self.skipped.append(spec)
            return None
        self.events.append(event)
        return event

    # -- device interface ---------------------------------------------------

    def read_block(self, address: int) -> bytes:
        self.accesses += 1
        self._fire_matching("read", address)
        data = super().read_block(address)
        transient = self._transient.get(address)
        if transient is not None:
            image, remaining = transient
            if remaining <= 1:
                del self._transient[address]
            else:
                transient[1] = remaining - 1
            return image
        return data

    def write_block(self, address: int, data: bytes) -> None:
        self.accesses += 1
        super().write_block(address, data)
        self._history.setdefault(address, []).append(bytes(data))
        # Post-eviction semantics: the adversary reacts after the
        # write-back has landed in DRAM.
        self._fire_matching("write", address)

    # -- trigger evaluation --------------------------------------------------

    def _in_region(self, address: int, region: str) -> bool:
        lo, hi = self._regions.get(region, (0, self.size_bytes))
        return lo <= address < hi

    def _matches(self, trigger: Trigger, kind: str, address: int) -> bool:
        if trigger.kind != "access" and trigger.kind != kind:
            return False
        if trigger.address is not None and trigger.address != address:
            return False
        if not self._in_region(address, trigger.region):
            return False
        if trigger.predicate is not None and not trigger.predicate(address):
            return False
        return True

    def _fire_matching(self, kind: str, address: int) -> None:
        still_armed = []
        for entry in self._armed:
            spec: FaultSpec = entry["spec"]
            if self._matches(spec.trigger, kind, address):
                entry["seen"] += 1
                if entry["seen"] >= spec.trigger.count:
                    self.fire_now(spec)
                    continue    # one-shot: drop from the armed list
            still_armed.append(entry)
        self._armed = still_armed

    # -- fault application ----------------------------------------------------

    def _eligible(self, region: str, exclude: int | None = None) -> list[int]:
        lo, hi = self._regions.get(region, (0, self.size_bytes))
        return sorted(a for a in self._blocks
                      if lo <= a < hi and a != exclude)

    def _pick_target(self, spec: FaultSpec, region: str,
                     exclude: int | None = None) -> int:
        if spec.address is not None:
            return spec.address
        candidates = self._eligible(region, exclude)
        if not candidates:
            raise FaultSkipped(region)
        return self.rng.choice(candidates)

    def _apply(self, spec: FaultSpec) -> FaultEvent:
        kind = spec.kind
        if kind is FaultKind.BIT_FLIP:
            return self._apply_flip(spec, "data")
        if kind is FaultKind.TRANSIENT_FLIP:
            return self._apply_transient(spec, "data")
        if kind is FaultKind.NODE_CORRUPT:
            return self._apply_flip(spec, "code")
        if kind is FaultKind.SPLICE:
            return self._apply_splice(spec)
        if kind is FaultKind.REPLAY:
            return self._apply_replay(spec, "data")
        if kind is FaultKind.COUNTER_ROLLBACK:
            return self._apply_replay(spec, "counter")
        if kind is FaultKind.RELOCATE:
            return self._apply_relocate(spec)
        if kind is FaultKind.COLD_BOOT:
            return self._apply_cold_boot(spec)
        raise ValueError(f"unknown fault kind: {kind}")

    def _apply_flip(self, spec: FaultSpec, region: str) -> FaultEvent:
        address = self._pick_target(spec, region)
        image = bytearray(self._blocks.get(address,
                                           bytes(self.block_size)))
        nbits = max(1, spec.bits)
        positions = tuple(sorted(self.rng.sample(
            range(len(image) * 8), min(nbits, len(image) * 8))))
        for bit in positions:
            image[bit // 8] ^= 1 << (bit % 8)
        self._blocks[address] = bytes(image)
        return FaultEvent(
            spec=spec, address=address, access_index=self.accesses,
            flipped_bits=positions,
            detail=f"flipped {len(positions)} bit(s) at {address:#x} "
                   f"({region} region)",
        )

    def _apply_transient(self, spec: FaultSpec, region: str) -> FaultEvent:
        """Arm a corrupted *view* of a block for its next reads.

        The stored image is untouched — only the data returned on the next
        ``duration`` reads is flipped, modelling a bus/transmission glitch
        that a retry would not reproduce.
        """
        address = self._pick_target(spec, region)
        image = bytearray(self._blocks.get(address,
                                           bytes(self.block_size)))
        nbits = max(1, spec.bits)
        positions = tuple(sorted(self.rng.sample(
            range(len(image) * 8), min(nbits, len(image) * 8))))
        for bit in positions:
            image[bit // 8] ^= 1 << (bit % 8)
        duration = max(1, spec.duration)
        self._transient[address] = [bytes(image), duration]
        return FaultEvent(
            spec=spec, address=address, access_index=self.accesses,
            flipped_bits=positions,
            detail=f"transient {len(positions)}-bit glitch at {address:#x} "
                   f"for {duration} read(s) ({region} region)",
        )

    def _apply_splice(self, spec: FaultSpec) -> FaultEvent:
        address = self._pick_target(spec, "data")
        if spec.partner is not None:
            partner = spec.partner
        else:
            partner = self._pick_target(
                FaultSpec(kind=spec.kind), "data", exclude=address)
        if partner == address:
            raise FaultSkipped("splice needs two distinct blocks")
        a = self._blocks.get(address, bytes(self.block_size))
        b = self._blocks.get(partner, bytes(self.block_size))
        self._blocks[address], self._blocks[partner] = b, a
        return FaultEvent(
            spec=spec, address=address, partner=partner,
            access_index=self.accesses,
            detail=f"spliced ciphertexts of {address:#x} and {partner:#x}",
        )

    def _apply_relocate(self, spec: FaultSpec) -> FaultEvent:
        """Copy ``partner``'s ciphertext over ``address`` (one-way).

        Unlike :meth:`_apply_splice` the source block keeps its image:
        this is the Buhren-style relocation a position-*independent*
        encryption + address-blind MAC cannot distinguish from honest
        data, because the relocated image is a perfectly valid ciphertext
        — just of the wrong address.
        """
        address = self._pick_target(spec, "data")
        if spec.partner is not None:
            source = spec.partner
        else:
            source = self._pick_target(
                FaultSpec(kind=spec.kind), "data", exclude=address)
        if source == address:
            raise FaultSkipped("relocate needs two distinct blocks")
        image = self._blocks.get(source, bytes(self.block_size))
        if image == self._blocks.get(address, bytes(self.block_size)):
            raise FaultSkipped("relocate source equals target image")
        self._blocks[address] = bytes(image)
        return FaultEvent(
            spec=spec, address=address, partner=source,
            access_index=self.accesses,
            detail=f"relocated ciphertext of {source:#x} onto {address:#x}",
        )

    def _apply_cold_boot(self, spec: FaultSpec) -> FaultEvent:
        """Decay the whole stored image toward the ground state.

        Every *set* bit of every stored block (data, counters, Merkle
        code alike — power loss is indiscriminate) flips to 0 with
        probability ``spec.decay``, drawn from the seeded RNG in sorted
        address order so a campaign replays bit-for-bit.  At least one
        bit is guaranteed to decay (the model is "the machine lost
        power", never a silent no-op).
        """
        decay = min(max(spec.decay, 0.0), 1.0)
        flipped_total = 0
        first_set: tuple[int, int] | None = None   # (address, bit index)
        touched: int | None = None
        for address in sorted(self._blocks):
            image = bytearray(self._blocks[address])
            changed = False
            for byte_index, byte in enumerate(image):
                if not byte:
                    continue
                for bit in range(8):
                    if not byte & (1 << bit):
                        continue
                    if first_set is None:
                        first_set = (address, byte_index * 8 + bit)
                    if self.rng.random() < decay:
                        image[byte_index] &= ~(1 << bit) & 0xFF
                        flipped_total += 1
                        changed = True
            if changed:
                self._blocks[address] = bytes(image)
                if touched is None:
                    touched = address
        if flipped_total == 0:
            if first_set is None:
                raise FaultSkipped("cold boot found no set bits to decay")
            address, bit = first_set
            image = bytearray(self._blocks[address])
            image[bit // 8] &= ~(1 << (bit % 8)) & 0xFF
            self._blocks[address] = bytes(image)
            flipped_total, touched = 1, address
        return FaultEvent(
            spec=spec, address=touched if touched is not None else 0,
            access_index=self.accesses,
            detail=f"cold-boot decay flipped {flipped_total} stored bit(s) "
                   f"toward ground state (p={decay})",
        )

    def _apply_replay(self, spec: FaultSpec, region: str) -> FaultEvent:
        # A replay needs a block with at least two recorded versions whose
        # stale image differs from what is currently stored.
        if spec.address is not None:
            candidates = [spec.address]
        else:
            lo, hi = self._regions.get(region, (0, self.size_bytes))
            candidates = sorted(
                a for a, versions in self._history.items()
                if lo <= a < hi and len(versions) >= 2
                and versions[0] != self._blocks.get(a)
            )
        if not candidates:
            raise FaultSkipped(f"no replayable block in {region} region")
        address = (candidates[0] if len(candidates) == 1
                   else self.rng.choice(candidates))
        versions = self._history.get(address, [])
        if len(versions) < 2 or versions[0] == self._blocks.get(address):
            raise FaultSkipped(f"block {address:#x} has no stale version")
        self._blocks[address] = versions[0]
        return FaultEvent(
            spec=spec, address=address, access_index=self.accesses,
            replayed_version=0,
            detail=f"rolled {address:#x} back to its first recorded image "
                   f"({region} region)",
        )


@dataclass
class BusTransaction:
    """One recorded bus transfer (for trace differencing)."""

    now: float
    num_bytes: int
    start: float
    end: float
    jammed: bool = False


class AdversarialBus(MemoryBus):
    """FCFS bus that records its transaction trace and can jam transfers.

    ``jam_every=N`` makes the adversary insert one ``jam_bytes`` transfer
    of its own in front of every Nth legitimate transaction — a
    deterministic model of contention-based interference.  The recorded
    :attr:`trace` lets tests assert that two runs of the same seed are
    transaction-identical.
    """

    def __init__(self, width_bits: int = 128, bus_mhz: float = 600.0,
                 core_mhz: float = 5000.0, jam_every: int | None = None,
                 jam_bytes: int = 64):
        super().__init__(width_bits=width_bits, bus_mhz=bus_mhz,
                         core_mhz=core_mhz)
        if jam_every is not None and jam_every < 1:
            raise ValueError("jam_every must be >= 1")
        self.jam_every = jam_every
        self.jam_bytes = jam_bytes
        self.trace: list[BusTransaction] = []
        self.jams = 0
        self._count = 0

    def schedule(self, now: float, num_bytes: int) -> tuple[float, float]:
        self._count += 1
        if self.jam_every is not None and self._count % self.jam_every == 0:
            jam_start, jam_end = super().schedule(now, self.jam_bytes)
            self.trace.append(BusTransaction(now, self.jam_bytes,
                                             jam_start, jam_end,
                                             jammed=True))
            self.jams += 1
        start, end = super().schedule(now, num_bytes)
        self.trace.append(BusTransaction(now, num_bytes, start, end))
        return start, end

    def reset(self) -> None:
        super().reset()
        self.trace = []
        self.jams = 0
        self._count = 0
