"""Differential oracle: execute scenarios and classify fault outcomes.

The oracle maintains a trivially-correct reference model — a dictionary
from block address to the last plaintext written — and replays a
scenario's schedule through a real :class:`SecureMemorySystem` whose DRAM
is an :class:`~repro.testing.faults.AdversarialDRAM`.  Every read is
compared byte-for-byte against the model, and after the schedule a *cold
sweep* flushes all on-chip state, invalidates every cache (L2, counter
cache, Merkle node cache), and re-reads the whole working set from DRAM —
so any persistent corruption must either raise
:class:`~repro.auth.merkle.IntegrityViolation` or surface as a byte
mismatch before the scenario ends.

Each fired fault is then classified:

* ``detected``      — the system raised ``IntegrityViolation`` after the
  fault fired (the paper's security claim);
* ``recovered``     — recovery was enabled and a transient fault was healed
  by bounded re-fetch: no violation escaped, every read matched the model,
  and the recovery controller logged at least one transient recovery;
* ``neutralized``   — no violation, and every read (including the cold
  sweep) matched the model: the fault provably had no effect on the
  plaintext the victim consumes;
* ``missed``        — the victim silently consumed wrong data although the
  configuration *promises* integrity (``auth`` is not ``NONE``) — a real
  hole, reported with a shrinkable reproducer;
* ``unprotected``   — wrong data was consumed but the scheme never claimed
  integrity (e.g. encryption-only presets) — expected, not a failure;
* ``not-triggered`` — the fault found no eligible target (e.g. a counter
  rollback against a counterless scheme);
* ``spurious``      — a violation or mismatch with **no** fault fired,
  which would indicate a bug in the system or the harness itself.

The module also hosts the kernel-level differential checks: table-driven
vs. scalar AES, table-driven GHASH vs. a bitwise GF(2^128) reference,
batched ``read_blocks``/``write_blocks`` vs. scalar loops, split vs.
monolithic counter modes on end-to-end plaintext recovery, and the NumPy
vector kernels vs. the table kernels on every bulk crypto path.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.auth.merkle import IntegrityViolation
from repro.core.config import (
    AuthMode,
    CounterOrg,
    PRESETS,
    RecoveryConfig,
    RecoveryPolicy,
    SecureMemoryConfig,
)
from repro.core.secure_memory import SecureMemorySystem
from repro.crypto.aes import AES128
from repro.crypto.gf128 import block_to_int, gf128_mul, int_to_block
from repro.crypto.ghash import ghash_chunks
from repro.testing.faults import AdversarialDRAM, FaultEvent
from repro.testing.schedule import (
    COUNTER_CACHE_ASSOC,
    COUNTER_CACHE_SIZE,
    L2_ASSOC,
    L2_SIZE,
    NODE_CACHE_SIZE,
    PROTECTED_BYTES,
    Op,
    Scenario,
    payload,
)


class FaultOutcome(enum.Enum):
    """Classification of one scenario's injected fault."""

    DETECTED = "detected"
    RECOVERED = "recovered"         # transient fault healed by retry
    NEUTRALIZED = "neutralized"
    MISSED = "missed"
    UNPROTECTED = "unprotected"
    NOT_TRIGGERED = "not-triggered"
    SPURIOUS = "spurious"
    CLEAN = "clean"                 # fault-free differential scenario


@dataclass
class ScenarioResult:
    """Everything the fuzz report needs about one executed scenario."""

    scenario: Scenario
    outcome: FaultOutcome
    fired: FaultEvent | None = None
    violation: str | None = None
    mismatch: str | None = None
    ops_executed: int = 0

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome.value,
            "fired": self.fired.to_dict() if self.fired else None,
            "violation": self.violation,
            "mismatch": self.mismatch,
            "ops_executed": self.ops_executed,
            "scenario": self.scenario.to_dict(),
        }


def promises_integrity(config: SecureMemoryConfig) -> bool:
    """Whether the configuration claims to detect memory tampering."""
    return config.auth is not AuthMode.NONE


def campaign_config(preset: str, mac_bits: int | None = None,
                    recovery: str | None = None) -> SecureMemoryConfig:
    """A preset shrunk to campaign geometry.

    Caches are small so the schedule's working set actually spills to
    untrusted DRAM, and split-counter minors are narrowed so write storms
    force real page re-encryptions within a short schedule.  ``recovery``
    names a :class:`RecoveryPolicy` value; when given, integrity-violation
    recovery is enabled with a retry budget that covers the fuzz harness's
    transient-glitch durations (1–3 corrupted reads).
    """
    config = PRESETS[preset]
    overrides: dict = {
        "counter_cache_size": COUNTER_CACHE_SIZE,
        "counter_cache_assoc": COUNTER_CACHE_ASSOC,
        "node_cache_size": NODE_CACHE_SIZE,
        "node_cache_assoc": 2,
    }
    if config.uses_counters and config.counter_org is CounterOrg.SPLIT:
        overrides["minor_bits"] = 3
    if mac_bits is not None:
        overrides["mac_bits"] = mac_bits
    if recovery is not None:
        overrides["recovery"] = RecoveryConfig(
            enabled=True, policy=RecoveryPolicy(recovery), max_retries=3)
    return config.with_updates(**overrides)


def build_system(scenario: Scenario, rng: random.Random
                 ) -> tuple[SecureMemorySystem, AdversarialDRAM]:
    """Construct the system under test with an adversarial DRAM attached."""
    config = campaign_config(scenario.preset, scenario.mac_bits,
                             scenario.recovery)
    holder: list[AdversarialDRAM] = []

    def factory(**kwargs):
        device = AdversarialDRAM(rng=rng, **kwargs)
        holder.append(device)
        return device

    system = SecureMemorySystem(config, protected_bytes=PROTECTED_BYTES,
                                l2_size=L2_SIZE, l2_assoc=L2_ASSOC,
                                dram_factory=factory)
    device = holder[0]
    device.set_layout(system.protected_bytes, system._code_region_base,
                      device.size_bytes)
    if scenario.weaken == "no-tree":
        # Deliberate sabotage: detach the Merkle tree so nothing below the
        # chip is ever verified.  The config still *promises* integrity, so
        # the oracle must now report missed faults — this is how the test
        # suite proves the harness can catch a weakened system.
        system.merkle = None
    elif scenario.weaken is not None:
        raise ValueError(f"unknown weaken mode: {scenario.weaken!r}")
    return system, device


def force_writeback(system: SecureMemorySystem, address: int) -> None:
    """Push a block's current contents to DRAM and drop it from the L2."""
    line = system.l2.lookup(address)
    if line is None:
        return
    data = bytes(line.payload)
    dirty = line.dirty
    system.l2.invalidate(address)
    if dirty:
        system._write_back(address, data)


def force_counter_writeback(system: SecureMemorySystem,
                            address: int) -> None:
    """Push the counter block covering ``address`` off-chip as well.

    The patient attacker of section 4.3 waits until not only the victim's
    data but also its *counter block* leaves the chip — only then does a
    stale counter image exist in DRAM to roll back to.  ``evict`` and
    ``storm`` ops force that situation instead of waiting for cache luck.
    """
    if system.counter_scheme is None or system.counter_cache is None:
        return
    index = system.counter_scheme.counter_block_address(address)
    cc = system.counter_cache
    line = cc.cache.lookup(index * cc.block_size)
    if line is None:
        return
    dirty = line.dirty
    cc.invalidate(index)
    if dirty:
        system._write_back_counter_block(index)


def cold_sweep(system: SecureMemorySystem,
               model: dict[int, bytes]) -> str | None:
    """Flush, drop every cache, and re-verify the whole model from DRAM.

    Returns a mismatch description, or ``None`` when every block read back
    equal to the reference model.  Raises :class:`IntegrityViolation` if
    the cold re-fetch path detects tampering.
    """
    system.flush()
    for address, _ in list(system.l2.resident_blocks()):
        system.l2.invalidate(address)
    if system.counter_cache is not None:
        cache = system.counter_cache.cache
        for cache_address, _ in list(cache.resident_blocks()):
            cache.invalidate(cache_address)
    if system.merkle is not None:
        node_cache = system.merkle.node_cache
        for address, _ in list(node_cache.resident_blocks()):
            node_cache.invalidate(address)
    zeros = bytes(system.block_size)
    for address in sorted(model):
        observed = system.read_block(address)
        expected = model.get(address, zeros)
        if observed != expected:
            return (f"cold sweep: block {address:#x} read "
                    f"{observed[:8].hex()}… expected {expected[:8].hex()}…")
    return None


def _execute_op(system: SecureMemorySystem, model: dict[int, bytes],
                op: Op) -> str | None:
    """Run one op against system and model; returns a mismatch or None."""
    block = system.block_size
    if op.kind == "read":
        observed = system.read_block(op.address)
        expected = model.get(op.address, bytes(block))
        if observed != expected:
            return (f"read {op.address:#x} returned "
                    f"{observed[:8].hex()}… expected "
                    f"{expected[:8].hex()}…")
    elif op.kind == "write":
        data = payload(op.value, block)
        system.write_block(op.address, data)
        model[op.address] = data
    elif op.kind == "evict":
        force_writeback(system, op.address)
        force_counter_writeback(system, op.address)
    elif op.kind == "flush":
        system.flush()
    elif op.kind == "storm":
        for round_ in range(op.count):
            data = payload(op.value + round_, block)
            system.write_block(op.address, data)
            model[op.address] = data
            force_writeback(system, op.address)
            force_counter_writeback(system, op.address)
    else:
        raise ValueError(f"unknown op kind: {op.kind!r}")
    return None


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario end-to-end and classify its fault."""
    device_rng = random.Random(scenario.seed ^ 0xADBE_EF5)
    system, device = build_system(scenario, device_rng)
    if scenario.fault is not None and scenario.fault_at is None:
        if scenario.fault.trigger is None:
            raise ValueError("scenario fault needs fault_at or a trigger")
        device.arm(scenario.fault)

    model: dict[int, bytes] = {}
    violation: str | None = None
    mismatch: str | None = None
    executed = 0
    fire_at = scenario.fault_at
    if fire_at is not None:
        fire_at = min(fire_at, len(scenario.ops))
    try:
        for index, op in enumerate(scenario.ops):
            if fire_at is not None and index == fire_at:
                device.fire_now(scenario.fault)
            mismatch = _execute_op(system, model, op)
            executed += 1
            if mismatch is not None:
                break
        else:
            if fire_at is not None and fire_at >= len(scenario.ops):
                device.fire_now(scenario.fault)
            if mismatch is None:
                mismatch = cold_sweep(system, model)
    except IntegrityViolation as exc:
        violation = str(exc)

    recovered = (system.recovery.stats.transient_recoveries
                 if system.recovery is not None else 0)
    fired = device.events[0] if device.events else None
    outcome = _classify(scenario, fired, violation, mismatch, recovered)
    return ScenarioResult(scenario=scenario, outcome=outcome, fired=fired,
                          violation=violation, mismatch=mismatch,
                          ops_executed=executed)


def _classify(scenario: Scenario, fired: FaultEvent | None,
              violation: str | None, mismatch: str | None,
              recovered: int = 0) -> FaultOutcome:
    if scenario.fault is None:
        if violation is None and mismatch is None:
            return FaultOutcome.CLEAN
        return FaultOutcome.SPURIOUS
    if violation is not None:
        return FaultOutcome.DETECTED if fired else FaultOutcome.SPURIOUS
    if mismatch is not None:
        if fired is None:
            return FaultOutcome.SPURIOUS
        config = campaign_config(scenario.preset, scenario.mac_bits)
        if promises_integrity(config):
            return FaultOutcome.MISSED
        return FaultOutcome.UNPROTECTED
    if fired is not None and recovered > 0:
        return FaultOutcome.RECOVERED
    return (FaultOutcome.NEUTRALIZED if fired
            else FaultOutcome.NOT_TRIGGERED)


# -- kernel-level differential checks -----------------------------------------


@dataclass
class DifferentialResult:
    """Outcome of one implementation-pair check."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed,
                "detail": self.detail}


def _diff_aes(rng: random.Random, rounds: int = 16) -> DifferentialResult:
    """Table-driven AES kernel vs. the scalar reference, both directions."""
    for _ in range(rounds):
        aes = AES128(rng.randbytes(16))
        block = rng.randbytes(16)
        fast = aes.encrypt_block(block)
        slow = aes.encrypt_block_scalar(block)
        if fast != slow:
            return DifferentialResult(
                "aes-table-vs-scalar", False,
                f"encrypt diverged on {block.hex()}")
        if (aes.decrypt_block(fast) != block
                or aes.decrypt_block_scalar(slow) != block):
            return DifferentialResult(
                "aes-table-vs-scalar", False,
                f"decrypt roundtrip diverged on {block.hex()}")
    return DifferentialResult("aes-table-vs-scalar", True,
                              f"{rounds} random keys/blocks agreed")


def _ghash_reference(h: bytes, chunks: list[bytes]) -> bytes:
    """Bitwise shift-and-add GHASH chain (no Shoup tables)."""
    hval = block_to_int(h)
    y = 0
    for chunk in chunks:
        y = gf128_mul(y ^ block_to_int(chunk), hval)
    return int_to_block(y)


def _diff_ghash(rng: random.Random, rounds: int = 16) -> DifferentialResult:
    """Shoup-table GHASH vs. the bitwise GF(2^128) reference."""
    for _ in range(rounds):
        h = rng.randbytes(16)
        chunks = [rng.randbytes(16) for _ in range(rng.randrange(1, 6))]
        if ghash_chunks(h, chunks) != _ghash_reference(h, chunks):
            return DifferentialResult(
                "ghash-table-vs-bitwise", False,
                f"diverged for subkey {h.hex()}")
    return DifferentialResult("ghash-table-vs-bitwise", True,
                              f"{rounds} random chains agreed")


def _fresh_system(preset: str) -> SecureMemorySystem:
    return SecureMemorySystem(campaign_config(preset),
                              protected_bytes=PROTECTED_BYTES,
                              l2_size=L2_SIZE, l2_assoc=L2_ASSOC)


def _diff_batched(rng: random.Random, preset: str = "split+gcm",
                  num_blocks: int = 12) -> DifferentialResult:
    """``read_blocks``/``write_blocks`` vs. the equivalent scalar loops."""
    name = f"batched-vs-scalar[{preset}]"
    batched = _fresh_system(preset)
    scalar = _fresh_system(preset)
    block = batched.block_size
    addresses = [index * block for index in
                 rng.sample(range(PROTECTED_BYTES // block), num_blocks)]
    pairs = [(address, payload(rng.randrange(256), block))
             for address in addresses]
    batched.write_blocks(pairs)
    for address, data in pairs:
        scalar.write_block(address, data)
    # Force everything through DRAM so the re-reads exercise the full
    # verify/decrypt paths, not just L2 hits.
    for system in (batched, scalar):
        system.flush()
        for address, _ in list(system.l2.resident_blocks()):
            system.l2.invalidate(address)
    shuffled = list(addresses) + addresses[:3]   # include duplicates
    rng.shuffle(shuffled)
    got_batched = batched.read_blocks(shuffled)
    got_scalar = [scalar.read_block(address) for address in shuffled]
    if got_batched != got_scalar:
        return DifferentialResult(name, False,
                                  "batched and scalar plaintexts diverged")
    return DifferentialResult(
        name, True, f"{len(pairs)} writes + {len(shuffled)} reads agreed")


def _diff_counter_modes(rng: random.Random,
                        ops_seed: int) -> DifferentialResult:
    """Split vs. monolithic counters must recover identical plaintext."""
    name = "split-vs-mono64-plaintext"
    split = _fresh_system("split")
    mono = _fresh_system("mono64b")
    block = split.block_size
    model: dict[int, bytes] = {}
    op_rng = random.Random(ops_seed)
    addresses = [index * block for index in
                 op_rng.sample(range(PROTECTED_BYTES // block), 6)]
    for step in range(40):
        address = op_rng.choice(addresses)
        if op_rng.random() < 0.5:
            data = payload(op_rng.randrange(256), block)
            model[address] = data
            split.write_block(address, data)
            mono.write_block(address, data)
        else:
            expected = model.get(address, bytes(block))
            got_split = split.read_block(address)
            got_mono = mono.read_block(address)
            if got_split != expected or got_mono != expected:
                return DifferentialResult(
                    name, False,
                    f"step {step}: split={got_split[:8].hex()}… "
                    f"mono={got_mono[:8].hex()}… "
                    f"expected={expected[:8].hex()}…")
    for system in (split, mono):
        mismatch = cold_sweep(system, model)
        if mismatch is not None:
            return DifferentialResult(name, False, mismatch)
    return DifferentialResult(name, True, "40 interleaved ops agreed")


def _diff_vector_kernels(rng: random.Random,
                         num_blocks: int = 48) -> DifferentialResult:
    """Vector (NumPy) kernels vs. the table kernels on every bulk path.

    Checks batched AES encrypt/decrypt, the batched GHASH chains, bulk
    CTR transforms under both IV domains, and batched GCM block MACs at
    every truncation width.  Skips (passes with a note) when NumPy is
    unavailable — then the vector kernel cannot be selected either.
    """
    from repro.crypto import vector
    from repro.crypto.ctr import AUTHENTICATION_IV, bulk_ctr_transform
    from repro.crypto.mac import gcm_block_mac

    name = "vector-vs-table-kernels"
    if not vector.HAVE_NUMPY:
        return DifferentialResult(name, True,
                                  "numpy unavailable; vector kernel "
                                  "cannot be selected (fallback checked)")
    key = rng.randbytes(16)
    aes = AES128(key)
    blocks = [rng.randbytes(16) for _ in range(num_blocks)]
    vec = vector.vector_aes(key)
    if vec.encrypt_blocks(blocks) != aes.encrypt_blocks(blocks):
        return DifferentialResult(name, False, "AES encrypt diverged")
    ciphertexts = aes.encrypt_blocks(blocks)
    if vec.decrypt_blocks(ciphertexts) != blocks:
        return DifferentialResult(name, False, "AES decrypt diverged")
    h = rng.randbytes(16)
    messages = [rng.randbytes(16 * rng.randrange(1, 6))
                for _ in range(num_blocks)]
    expected_digests = [
        ghash_chunks(h, [m[i:i + 16] for i in range(0, len(m), 16)])
        for m in messages
    ]
    if vector.ghash_chunks_many(h, messages) != expected_digests:
        return DifferentialResult(name, False, "GHASH chains diverged")
    items = [(rng.randrange(1 << 44) * 16, rng.randrange(1 << 70),
              rng.randbytes(64)) for _ in range(num_blocks)]
    for iv_tag in (None, AUTHENTICATION_IV):
        kwargs = {} if iv_tag is None else {"iv_tag": iv_tag}
        if (vector.bulk_ctr_transform_vector(key, items, **kwargs)
                != bulk_ctr_transform(aes, items, **kwargs)):
            return DifferentialResult(
                name, False, f"bulk CTR diverged (iv_tag={iv_tag})")
    for mac_bits in (32, 64, 128):
        expected_macs = [
            gcm_block_mac(aes, h, address, counter, data, mac_bits)
            for address, counter, data in items
        ]
        if (vector.gcm_block_macs_vector(key, h, items, mac_bits)
                != expected_macs):
            return DifferentialResult(
                name, False, f"GCM block MACs diverged at {mac_bits} bits")
    return DifferentialResult(
        name, True,
        f"{num_blocks}-block batches agreed on AES/GHASH/CTR/MAC paths")


def run_differential_checks(seed: int) -> list[DifferentialResult]:
    """Run every implementation-pair check from one seed."""
    rng = random.Random(seed ^ 0xD1FF)
    return [
        _diff_aes(rng),
        _diff_ghash(rng),
        _diff_batched(rng),
        _diff_counter_modes(rng, ops_seed=seed ^ 0xC7),
        _diff_vector_kernels(rng),
    ]
