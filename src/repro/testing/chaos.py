"""Deterministic chaos harness for the distributed sweep fabric.

Fault injection for :mod:`repro.resilience.fabric` itself — where
:mod:`repro.testing.faults` attacks the *memory system*, this module
attacks the *sweep infrastructure*: workers SIGKILLed mid-cell, leases
left behind by dead owners, torn result files, clock-skewed heartbeats.
Every scenario is deterministic (kill points are keyed to checkpoint
ordinals and persisted attempt counters, damage is applied to named
queue files between runs — never by racing a timer), so a failure
replays exactly.

The harness's verdict is :func:`assert_chaos_equivalent`: after any
amount of injected chaos plus a resume, the fabric's final report must
be byte-identical to an uninterrupted serial :func:`run_many` of the
same manifest once the metadata that legitimately differs (wall-clock,
attempt counts, worker identity) is stripped — see
:func:`normalize_report`.  The event journal supplies the no-duplicate
evidence: :func:`assert_no_duplicate_completions` proves no cell
*finished* twice, and :func:`attempt_counts` exposes how often each cell
*started* so tests can pin exactly which cells paid a retry.
"""

from __future__ import annotations

import json
import os
import time

__all__ = [
    "ChaosPlan",
    "assert_chaos_equivalent",
    "assert_no_duplicate_completions",
    "attempt_counts",
    "normalize_report",
    "plant_orphan_lease",
    "skew_lease_heartbeat",
    "tear_result_file",
]

#: per-cell metadata that legitimately differs between a chaotic fabric
#: run and a serene serial one: how long it took, how many attempts it
#: burned, who ran it, and whether it resumed — never *what it computed*
_VOLATILE_CELL_KEYS = ("elapsed", "attempts", "retried", "worker_id",
                       "resumed_from_checkpoint")


def _canonical_app(app):
    """Path-independent workload identity for a cell spec's ``app``.

    Recorded-trace specs normalize to ``trace-<fingerprint>`` so two
    sweeps over the same recording reached through different paths (a
    moved queue dir, a relative vs. absolute invocation) still compare
    equal.  Generator names pass through; an unreadable trace file keeps
    its raw spec (comparison then falls back to path identity).
    """
    from repro.workloads import canonical_workload_id, is_trace_workload

    if not isinstance(app, str) or not is_trace_workload(app):
        return app
    try:
        return canonical_workload_id(app)
    except (OSError, ValueError):
        return app


def normalize_report(report) -> str:
    """Canonical JSON of a sweep report, timing/attempt metadata removed.

    Accepts a :class:`~repro.resilience.runner.SweepReport` or an
    already-``to_dict()``-ed mapping (e.g. one loaded back through
    :func:`~repro.resilience.runner.load_sweep_report`).  Two reports
    normalize identically iff every cell reached the same terminal status
    with bit-identical simulation results — the chaos harness's
    definition of "the fabric changed nothing".  Cell workload specs are
    canonicalized through :func:`_canonical_app` first, so trace-driven
    cells compare by content fingerprint, not by file path.
    """
    payload = report if isinstance(report, dict) else report.to_dict()
    payload = json.loads(json.dumps(payload))       # deep copy, JSON-shaped
    payload.pop("fabric", None)
    payload.setdefault("schema", "repro-sweep/1")
    payload["schema"] = "repro-sweep/*"             # v1 vs v2 is metadata too
    for cell in payload.get("cells", ()):
        for key in _VOLATILE_CELL_KEYS:
            cell.pop(key, None)
        spec = cell.get("cell")
        if isinstance(spec, dict) and "app" in spec:
            spec["app"] = _canonical_app(spec["app"])
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def assert_chaos_equivalent(serial_report, fabric_report) -> None:
    """Fail loudly unless the two reports are byte-identical (normalized)."""
    serene = normalize_report(serial_report)
    chaotic = normalize_report(fabric_report)
    if serene == chaotic:
        return
    import difflib

    diff = "\n".join(difflib.unified_diff(
        json.dumps(json.loads(serene), indent=1).splitlines(),
        json.dumps(json.loads(chaotic), indent=1).splitlines(),
        "serial", "fabric", lineterm=""))
    raise AssertionError(
        "chaos run diverged from the uninterrupted serial run:\n" + diff)


def attempt_counts(queue_dir: str) -> dict[str, int]:
    """``cell_started`` journal events per cell id (execution attempts)."""
    from repro.resilience.fabric import read_events

    counts: dict[str, int] = {}
    for event in read_events(queue_dir):
        if event.get("event") == "cell_started":
            cid = event.get("cell", "?")
            counts[cid] = counts.get(cid, 0) + 1
    return counts


def assert_no_duplicate_completions(queue_dir: str) -> None:
    """No cell may log ``cell_finished`` twice — a completed cell whose
    result was published must never execute (and re-publish) again."""
    from repro.resilience.fabric import read_events

    finished: dict[str, int] = {}
    for event in read_events(queue_dir):
        if event.get("event") == "cell_finished":
            cid = event.get("cell", "?")
            finished[cid] = finished.get(cid, 0) + 1
    duplicates = {cid: count for cid, count in finished.items() if count > 1}
    if duplicates:
        raise AssertionError(
            f"cells completed more than once: {duplicates} — the "
            "completed-result check before claiming is broken")


# -- queue-file vandalism (applied between runs, so deterministic) ------------


def tear_result_file(queue_dir: str, cid: str,
                     content: bytes = b'{"status": "ok", "cell"') -> str:
    """Overwrite a cell's published result with a torn (truncated) write.

    Simulates the one writer the fabric itself never is: a non-atomic
    one.  A resume must detect the damage, quarantine the file to
    ``*.corrupt``, and re-run the cell rather than trust or crash on it.
    Returns the damaged path.
    """
    from repro.resilience.fabric import QueuePaths

    path = QueuePaths(queue_dir).result(cid)
    with open(path, "wb") as handle:
        handle.write(content)
    return path


def plant_orphan_lease(queue_dir: str, cid: str, *,
                       age: float = 3600.0) -> str:
    """Plant a lease owned by a long-dead worker, heartbeat ``age`` s old.

    The next scan must treat it as stale, reclaim it (journaled), and run
    the cell — a SIGKILLed owner forfeits its cell by silence alone.
    """
    from repro.resilience.checkpoint import atomic_write_json
    from repro.resilience.fabric import QueuePaths

    path = QueuePaths(queue_dir).lease(cid)
    atomic_write_json(path, {
        "worker": "chaos-ghost", "nonce": "deadbeefdeadbeef",
        "pid": 2 ** 22 - 1, "heartbeat": time.time() - age,
    }, indent=0)
    return path


def skew_lease_heartbeat(queue_dir: str, cid: str, *,
                         skew: float = 3600.0) -> str:
    """Date a cell's lease heartbeat ``skew`` seconds into the future.

    A lease from a clock-skewed (or heartbeat-forging) worker must not
    park the cell forever: staleness is bidirectional, so a heartbeat
    more than ``lease_ttl`` ahead of local time is reclaimed exactly like
    an expired one.
    """
    from repro.resilience.checkpoint import atomic_write_json
    from repro.resilience.fabric import QueuePaths

    path = QueuePaths(queue_dir).lease(cid)
    atomic_write_json(path, {
        "worker": "chaos-skewed", "nonce": "feedfacefeedface",
        "pid": 2 ** 22 - 2, "heartbeat": time.time() + skew,
    }, indent=0)
    return path


class ChaosPlan:
    """A named, ordered batch of queue-dir damage for one chaos scenario.

    Collects vandalism steps (torn results, orphan/skewed leases) plus
    the cells whose ``inject`` fields carry in-band kills, then applies
    the file damage in one deterministic shot — typically between an
    interrupted first fabric run and the resuming second one::

        plan = (ChaosPlan()
                .tear_result("0001-split-gzip")
                .orphan_lease("0002-baseline-swim")
                .skew_lease("0003-split-swim"))
        plan.apply(queue_dir)

    ``applied`` records the damaged paths for assertions.
    """

    def __init__(self) -> None:
        self._steps: list[tuple] = []
        self.applied: list[str] = []

    def tear_result(self, cid: str, content: bytes | None = None
                    ) -> "ChaosPlan":
        self._steps.append(("tear", cid, content))
        return self

    def orphan_lease(self, cid: str, *, age: float = 3600.0) -> "ChaosPlan":
        self._steps.append(("orphan", cid, age))
        return self

    def skew_lease(self, cid: str, *, skew: float = 3600.0) -> "ChaosPlan":
        self._steps.append(("skew", cid, skew))
        return self

    def apply(self, queue_dir: str) -> list[str]:
        for kind, cid, arg in self._steps:
            if kind == "tear":
                path = (tear_result_file(queue_dir, cid)
                        if arg is None
                        else tear_result_file(queue_dir, cid, arg))
            elif kind == "orphan":
                path = plant_orphan_lease(queue_dir, cid, age=arg)
            else:
                path = skew_lease_heartbeat(queue_dir, cid, skew=arg)
            self.applied.append(path)
        return self.applied

    def quarantined(self, queue_dir: str) -> list[str]:
        """Damaged result files the fabric has since quarantined."""
        return [path for path in self.applied
                if os.path.exists(path + ".corrupt")]
