"""Adversarial-memory fault-injection harness and differential oracle.

The correctness backstop of the reproduction: seeded, schedulable bus-level
faults (:mod:`repro.testing.faults`), deterministic operation schedules
(:mod:`repro.testing.schedule`), a differential oracle that classifies
every injected fault as detected / neutralized / missed
(:mod:`repro.testing.oracle`), ddmin-style schedule shrinking
(:mod:`repro.testing.shrink`), and the campaign runner behind
``python -m repro fuzz`` (:mod:`repro.testing.fuzz`).
"""

from repro.testing.faults import (
    AdversarialBus,
    AdversarialDRAM,
    FaultEvent,
    FaultKind,
    FaultSpec,
    Trigger,
)
from repro.testing.fuzz import (
    FuzzReport,
    format_report,
    replay_reproducer,
    run_fuzz,
)
from repro.testing.oracle import (
    DifferentialResult,
    FaultOutcome,
    ScenarioResult,
    run_differential_checks,
    run_scenario,
)
from repro.testing.schedule import Op, Scenario, generate_scenario
from repro.testing.shrink import shrink_scenario

__all__ = [
    "AdversarialBus",
    "AdversarialDRAM",
    "DifferentialResult",
    "FaultEvent",
    "FaultKind",
    "FaultOutcome",
    "FaultSpec",
    "FuzzReport",
    "Op",
    "Scenario",
    "ScenarioResult",
    "Trigger",
    "format_report",
    "generate_scenario",
    "replay_reproducer",
    "run_differential_checks",
    "run_fuzz",
    "run_scenario",
    "shrink_scenario",
]
