"""Adversarial-memory fault-injection harness and differential oracle.

The correctness backstop of the reproduction: seeded, schedulable bus-level
faults (:mod:`repro.testing.faults`), deterministic operation schedules
(:mod:`repro.testing.schedule`), a differential oracle that classifies
every injected fault as detected / neutralized / missed
(:mod:`repro.testing.oracle`), ddmin-style schedule shrinking
(:mod:`repro.testing.shrink`), the campaign runner behind
``python -m repro fuzz`` (:mod:`repro.testing.fuzz`), and the
sweep-fabric chaos harness — worker kills, stale/skewed leases, torn
result files, byte-identical resume assertions
(:mod:`repro.testing.chaos`).
"""

from repro.testing.chaos import (
    ChaosPlan,
    assert_chaos_equivalent,
    assert_no_duplicate_completions,
    attempt_counts,
    normalize_report,
    plant_orphan_lease,
    skew_lease_heartbeat,
    tear_result_file,
)
from repro.testing.faults import (
    AdversarialBus,
    AdversarialDRAM,
    FaultEvent,
    FaultKind,
    FaultSpec,
    Trigger,
)
from repro.testing.fuzz import (
    FuzzReport,
    format_report,
    replay_reproducer,
    run_fuzz,
)
from repro.testing.oracle import (
    DifferentialResult,
    FaultOutcome,
    ScenarioResult,
    run_differential_checks,
    run_scenario,
)
from repro.testing.schedule import Op, Scenario, generate_scenario
from repro.testing.shrink import shrink_scenario

__all__ = [
    "AdversarialBus",
    "AdversarialDRAM",
    "ChaosPlan",
    "DifferentialResult",
    "FaultEvent",
    "FaultKind",
    "FaultOutcome",
    "FaultSpec",
    "FuzzReport",
    "Op",
    "Scenario",
    "ScenarioResult",
    "Trigger",
    "assert_chaos_equivalent",
    "assert_no_duplicate_completions",
    "attempt_counts",
    "format_report",
    "generate_scenario",
    "normalize_report",
    "plant_orphan_lease",
    "replay_reproducer",
    "run_differential_checks",
    "run_fuzz",
    "run_scenario",
    "shrink_scenario",
    "skew_lease_heartbeat",
    "tear_result_file",
]
