"""Schedule shrinking: reduce a failing scenario to a minimal reproducer.

A delta-debugging-style minimizer over the scenario's operation list.  A
candidate reduction is accepted only if re-running the whole scenario still
produces the same failing outcome, so correctness never depends on guessing
how removal shifts later state — every candidate is revalidated end to end.

Before shrinking, the fault is *concretized*: the target address the seeded
RNG chose on the original run is pinned into the spec, so dropping earlier
operations cannot silently retarget the fault at a different block.

The algorithm removes exponentially larger chunks first (halves, quarters,
…) and finishes with single-op elimination, iterating to a fixed point.
Its cost is O(n log n) scenario replays in the common case, and the
shrunken scenario replays deterministically from its own ``to_dict()``
serialization (seed included) — the "printed seed" workflow:

    result = run_scenario(Scenario.from_dict(reproducer_dict))
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.testing.oracle import FaultOutcome, ScenarioResult, run_scenario
from repro.testing.schedule import Scenario


def concretize_fault(scenario: Scenario,
                     result: ScenarioResult) -> Scenario:
    """Pin the fired fault's chosen targets into the spec."""
    if scenario.fault is None or result.fired is None:
        return scenario
    fault = replace(scenario.fault, address=result.fired.address,
                    partner=result.fired.partner)
    return replace(scenario, fault=fault)


def _same_failure(scenario: Scenario,
                  outcome: FaultOutcome) -> ScenarioResult | None:
    """Re-run; return the result if the outcome is unchanged, else None."""
    result = run_scenario(scenario)
    return result if result.outcome is outcome else None


def _candidate(scenario: Scenario, keep: list[bool]) -> Scenario:
    """Scenario with only the kept ops, fault index remapped."""
    ops = tuple(op for op, kept in zip(scenario.ops, keep) if kept)
    fault_at = scenario.fault_at
    if fault_at is not None:
        fault_at = sum(1 for kept in keep[:fault_at] if kept)
    return scenario.with_ops(ops, fault_at=fault_at)


def shrink_scenario(scenario: Scenario, result: ScenarioResult | None = None,
                    max_replays: int = 400,
                    ) -> tuple[Scenario, ScenarioResult]:
    """Minimize a failing scenario while preserving its outcome.

    Returns the smallest scenario found and its (re-validated) result.
    ``max_replays`` bounds the total number of re-executions so a
    pathological scenario cannot stall a fuzz run.
    """
    if result is None:
        result = run_scenario(scenario)
    outcome = result.outcome
    scenario = concretize_fault(scenario, result)
    revalidated = _same_failure(scenario, outcome)
    if revalidated is None:
        # Concretization changed behaviour (should not happen, but never
        # let the shrinker replace a real failure with a non-failure).
        return scenario.with_ops(scenario.ops, fault_at=scenario.fault_at), \
            result
    best, best_result = scenario, revalidated
    replays = 1

    improved = True
    while improved and replays < max_replays:
        improved = False
        n = len(best.ops)
        if n == 0:
            break
        chunk = max(1, n // 2)
        while chunk >= 1 and replays < max_replays:
            start = 0
            while start < len(best.ops) and replays < max_replays:
                keep = [True] * len(best.ops)
                for index in range(start, min(start + chunk,
                                              len(best.ops))):
                    keep[index] = False
                candidate = _candidate(best, keep)
                replays += 1
                candidate_result = _same_failure(candidate, outcome)
                if candidate_result is not None:
                    best, best_result = candidate, candidate_result
                    improved = True
                    # Do not advance: the same window now names new ops.
                else:
                    start += chunk
            chunk //= 2
    return best, best_result
