"""Seeded fuzz campaigns over every scheme preset, with a JSON report.

A *campaign* is one seeded operation schedule plus one fault, replayed
through every preset under test (the same schedule for all of them — the
cross-scheme half of the differential oracle).  Fault kinds rotate
deterministically with the campaign index so a short run still covers the
whole taxonomy.  Kernel-level differential checks (table vs. scalar AES,
GHASH, batched vs. scalar memory ops, split vs. monolithic counters) run
once per fuzz invocation from the same master seed.

``run_fuzz`` returns a :class:`FuzzReport`; ``python -m repro fuzz`` prints
it (``--json`` for the machine-readable object) and exits non-zero when any
fault was missed, any spurious failure appeared, or any differential check
diverged — which is what the CI ``fuzz-smoke`` job keys on.  Scenarios that
miss get shrunk to minimal reproducers and embedded in the report, so a
failure seen in CI replays locally from the JSON artifact alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.config import PRESETS
from repro.core.results import ResultBase, ResultMeta
from repro.testing.faults import FaultKind
from repro.testing.oracle import (
    DifferentialResult,
    FaultOutcome,
    ScenarioResult,
    run_differential_checks,
    run_scenario,
)
from repro.testing.schedule import Scenario, generate_scenario
from repro.testing.shrink import shrink_scenario

#: Deterministic fault-kind rotation across campaign indices.  New kinds
#: are appended, never inserted: short CI runs pin their covered kinds by
#: campaign index, so reordering would silently change what they test.
FAULT_ROTATION = (
    FaultKind.BIT_FLIP,
    FaultKind.REPLAY,
    FaultKind.SPLICE,
    FaultKind.COUNTER_ROLLBACK,
    FaultKind.NODE_CORRUPT,
    FaultKind.RELOCATE,
    FaultKind.COLD_BOOT,
)

#: Rotation used when recovery is enabled: transient glitches (which the
#: recovery controller must heal) interleaved with every persistent kind
#: (which must still end in the configured policy's loud verdict).
FAULT_ROTATION_RECOVERY = (
    FaultKind.TRANSIENT_FLIP,
    FaultKind.BIT_FLIP,
    FaultKind.TRANSIENT_FLIP,
    FaultKind.REPLAY,
    FaultKind.TRANSIENT_FLIP,
    FaultKind.SPLICE,
    FaultKind.TRANSIENT_FLIP,
    FaultKind.COUNTER_ROLLBACK,
    FaultKind.TRANSIENT_FLIP,
    FaultKind.NODE_CORRUPT,
    FaultKind.TRANSIENT_FLIP,
    FaultKind.RELOCATE,
    FaultKind.TRANSIENT_FLIP,
    FaultKind.COLD_BOOT,
)

#: Outcomes that make a fuzz run fail.
FAILURE_OUTCOMES = (FaultOutcome.MISSED, FaultOutcome.SPURIOUS)


@dataclass
class FuzzReport(ResultBase):
    """Aggregate result of one fuzz invocation."""

    seed: int
    campaigns: int
    presets: list[str]
    weaken: str | None
    recover: str | None = None
    workload: str | None = None
    injected: int = 0
    detected: int = 0
    recovered: int = 0
    neutralized: int = 0
    missed: int = 0
    unprotected: int = 0
    not_triggered: int = 0
    spurious: int = 0
    #: transient glitches that recovery *should* have healed but instead
    #: escalated to a violation on an integrity-promising preset
    unrecovered_transient: int = 0
    timed_out: bool = False
    scenarios_run: int = 0
    per_preset: dict = field(default_factory=dict)
    per_kind: dict = field(default_factory=dict)
    differential: list = field(default_factory=list)
    reproducers: list = field(default_factory=list)
    meta: ResultMeta | None = None

    @property
    def ok(self) -> bool:
        """True when nothing slipped past the oracle."""
        return (self.missed == 0 and self.spurious == 0
                and self.unrecovered_transient == 0
                and all(check["passed"] for check in self.differential))

    def record(self, result: ScenarioResult) -> None:
        self.scenarios_run += 1
        outcome = result.outcome
        scenario = result.scenario
        preset = scenario.preset
        per_preset = self.per_preset.setdefault(preset, {})
        per_preset[outcome.value] = per_preset.get(outcome.value, 0) + 1
        if scenario.fault is not None:
            kind = scenario.fault.kind.value
            per_kind = self.per_kind.setdefault(kind, {})
            per_kind[outcome.value] = per_kind.get(outcome.value, 0) + 1
        if outcome is FaultOutcome.NOT_TRIGGERED:
            self.not_triggered += 1
            return
        if outcome is FaultOutcome.SPURIOUS:
            self.spurious += 1
            return
        if outcome is FaultOutcome.CLEAN:
            return
        self.injected += 1
        if outcome is FaultOutcome.DETECTED:
            self.detected += 1
            if (scenario.recovery is not None and scenario.fault is not None
                    and scenario.fault.kind is FaultKind.TRANSIENT_FLIP):
                self.unrecovered_transient += 1
        elif outcome is FaultOutcome.RECOVERED:
            self.recovered += 1
        elif outcome is FaultOutcome.NEUTRALIZED:
            self.neutralized += 1
        elif outcome is FaultOutcome.UNPROTECTED:
            self.unprotected += 1
        elif outcome is FaultOutcome.MISSED:
            self.missed += 1

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "campaigns": self.campaigns,
            "presets": self.presets,
            "weaken": self.weaken,
            "recover": self.recover,
            "workload": self.workload,
            "scenarios_run": self.scenarios_run,
            "timed_out": self.timed_out,
            "faults": {
                "injected": self.injected,
                "detected": self.detected,
                "recovered": self.recovered,
                "neutralized": self.neutralized,
                "missed": self.missed,
                "unprotected": self.unprotected,
                "not_triggered": self.not_triggered,
                "spurious": self.spurious,
                "unrecovered_transient": self.unrecovered_transient,
            },
            "per_preset": self.per_preset,
            "per_kind": self.per_kind,
            "differential": self.differential,
            "reproducers": self.reproducers,
            "ok": self.ok,
            "meta": self.meta_dict(),
        }


def campaign_seed(master_seed: int, campaign: int) -> int:
    """Derive one campaign's schedule seed (stable, collision-free)."""
    return master_seed * 1_000_003 + campaign


def run_fuzz(campaigns: int = 20, seed: int = 0, *,
             presets: list[str] | None = None, weaken: str | None = None,
             num_ops: int = 28, shrink: bool = True,
             mac_bits: int | None = None, recover: str | None = None,
             timeout: float | None = None,
             workload: str | None = None) -> FuzzReport:
    """Run seeded fault campaigns plus the kernel differential checks.

    ``presets`` defaults to every named preset.  ``weaken`` (e.g.
    ``"no-tree"``) sabotages every system under test while leaving its
    *claimed* guarantee intact — used to demonstrate that the oracle
    reports missed faults against a weakened implementation.

    ``recover`` names a recovery policy (``"halt"``/``"quarantine_page"``);
    when set, every system under test runs with integrity-violation
    recovery enabled and the fault rotation interleaves transient glitches
    with the persistent kinds.  ``timeout`` is a wall-clock budget in
    seconds: when exceeded, the run stops before the next scenario and the
    report is marked ``timed_out`` (results so far stay valid).

    ``workload`` (a SPEC app, scenario-library name, or recorded trace —
    anything :func:`repro.workloads.resolve_trace` accepts) shapes each
    campaign's working set after that workload's address stream instead of
    the default stratified pick, so fault campaigns run under realistic
    locality.  The default ``None`` keeps every historical seed replaying
    bit-for-bit.
    """
    if presets is None:
        presets = list(PRESETS)
    else:
        for name in presets:
            if name not in PRESETS:
                raise KeyError(f"unknown preset {name!r}")
    report = FuzzReport(seed=seed, campaigns=campaigns,
                        presets=list(presets), weaken=weaken,
                        recover=recover, workload=workload)
    report.differential = [
        check.to_dict() for check in run_differential_checks(seed)
    ]
    rotation = FAULT_ROTATION_RECOVERY if recover else FAULT_ROTATION
    deadline = (time.monotonic() + timeout) if timeout else None
    for campaign in range(campaigns):
        kind = rotation[campaign % len(rotation)]
        schedule_seed = campaign_seed(seed, campaign)
        for preset in presets:
            if deadline is not None and time.monotonic() >= deadline:
                report.timed_out = True
                return report
            scenario = generate_scenario(
                preset, schedule_seed, fault_kind=kind,
                num_ops=num_ops, weaken=weaken, mac_bits=mac_bits,
                recovery=recover, workload=workload,
            )
            result = run_scenario(scenario)
            report.record(result)
            if result.outcome in FAILURE_OUTCOMES and shrink:
                reduced, reduced_result = shrink_scenario(scenario, result)
                report.reproducers.append({
                    "outcome": reduced_result.outcome.value,
                    "ops": len(reduced.ops),
                    "violation": reduced_result.violation,
                    "mismatch": reduced_result.mismatch,
                    "scenario": reduced.to_dict(),
                })
    return report


def format_report(report: FuzzReport) -> str:
    """Human-readable summary of a fuzz run."""
    lines = [
        f"fuzz: {report.campaigns} campaign(s), seed {report.seed}, "
        f"{len(report.presets)} preset(s)"
        + (f", weaken={report.weaken}" if report.weaken else "")
        + (f", recover={report.recover}" if report.recover else ""),
        f"  scenarios run  : {report.scenarios_run}"
        + ("  (TIMED OUT — partial)" if report.timed_out else ""),
        f"  faults injected: {report.injected}",
        f"    detected     : {report.detected}",
        f"    recovered    : {report.recovered}",
        f"    neutralized  : {report.neutralized}",
        f"    unprotected  : {report.unprotected}  "
        f"(scheme makes no integrity claim)",
        f"    missed       : {report.missed}",
        f"  not triggered  : {report.not_triggered}",
        f"  spurious       : {report.spurious}",
    ]
    if report.recover:
        lines.append("  unrecovered transient : "
                     f"{report.unrecovered_transient}")
    for check in report.differential:
        status = "ok" if check["passed"] else "DIVERGED"
        lines.append(f"  differential {check['name']:<28}: {status}"
                     + (f" ({check['detail']})" if not check["passed"]
                        else ""))
    for repro in report.reproducers:
        scenario = repro["scenario"]
        lines.append(
            f"  reproducer: {repro['outcome']} on {scenario['preset']} "
            f"seed {scenario['seed']} in {repro['ops']} op(s) — replay "
            f"with repro.testing.Scenario.from_dict(...)")
    lines.append("  verdict        : "
                 + ("OK" if report.ok else "FAILURES FOUND"))
    return "\n".join(lines)


def replay_reproducer(data: dict) -> ScenarioResult:
    """Replay a reproducer dict from a fuzz report (determinism helper)."""
    return run_scenario(Scenario.from_dict(data))
