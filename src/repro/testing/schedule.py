"""Seeded operation schedules and serializable fault scenarios.

A *schedule* is a flat list of :class:`Op` — reads, writes, forced
evictions, full flushes, and minor-counter-overflow-forcing write storms —
over a small working set of block addresses.  Schedules are generated from
a :class:`random.Random` seed and nothing else, so a scenario replays
bit-for-bit from its printed seed.

A :class:`Scenario` binds one schedule to one scheme preset and (at most)
one :class:`~repro.testing.faults.FaultSpec`, injected either at an
operation boundary (``fault_at`` — stable under schedule shrinking) or via
a DRAM-level trigger.  ``to_dict``/``from_dict`` round-trip through JSON,
which is how the fuzz report embeds minimal reproducers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.testing.faults import FaultKind, FaultSpec, Trigger

#: Default geometry of campaign systems: small enough that the working set
#: overflows the L2, the counter cache, and the node cache (faults need
#: *evicted* state in DRAM to target — a counter rollback is impossible
#: while the counter block sits on-chip), large enough for several
#: encryption pages.
PROTECTED_BYTES = 64 * 1024
L2_SIZE = 2 * 1024
L2_ASSOC = 2
#: A single-line counter cache: every switch between counter blocks is a
#: (dirty) eviction, so counter blocks accumulate multiple DRAM versions —
#: the raw material of a counter-rollback fault.
COUNTER_CACHE_SIZE = 64
COUNTER_CACHE_ASSOC = 1
NODE_CACHE_SIZE = 256

OP_KINDS = ("read", "write", "evict", "flush", "storm")


@dataclass(frozen=True)
class Op:
    """One step of an operation schedule.

    ``read``/``write`` go through the L2 like program traffic; ``evict``
    forces the block's current contents to DRAM and drops the line (the
    patient attacker waiting out a write-back); ``flush`` drains all dirty
    on-chip state; ``storm`` performs ``count`` write+evict rounds against
    one address — the minor-counter-overflow forcing pattern.
    """

    kind: str
    address: int = 0
    value: int = 0
    count: int = 0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "address": self.address,
                "value": self.value, "count": self.count}

    @classmethod
    def from_dict(cls, data: dict) -> "Op":
        return cls(kind=data["kind"], address=data.get("address", 0),
                   value=data.get("value", 0), count=data.get("count", 0))


def payload(value: int, block_size: int = 64) -> bytes:
    """Deterministic non-trivial block contents for a write value tag."""
    return bytes((value * 131 + i * 7 + 1) & 0xFF for i in range(block_size))


def working_set(rng: random.Random, block_size: int = 64,
                protected_bytes: int = PROTECTED_BYTES,
                size: int = 8) -> list[int]:
    """Pick one block address per disjoint window of the protected region.

    Stratified rather than uniform: every address lands in a different
    counter block under every counter organization (window stride >= any
    scheme's counter-block coverage), so interleaved writes ping-pong the
    campaign's single-line counter cache and counter blocks accumulate
    the multiple DRAM versions a rollback fault needs.
    """
    num_blocks = protected_bytes // block_size
    size = min(size, num_blocks)
    window = num_blocks // size
    return [(index * window + rng.randrange(window)) * block_size
            for index in range(size)]


def workload_working_set(workload: str, seed: int,
                         block_size: int = 64,
                         protected_bytes: int = PROTECTED_BYTES,
                         size: int = 8, probe_refs: int = 256) -> list[int]:
    """Working set drawn from a named workload's access stream.

    Resolves ``probe_refs`` references of the workload (SPEC app,
    scenario-library name, or recorded trace), folds each address into
    the campaign's protected region block-wise, and keeps the first
    ``size`` distinct blocks in first-touch order — so fault campaigns
    hammer the blocks the *workload* actually reuses, with its locality
    structure, instead of a stratified synthetic pick.
    """
    from repro.workloads import resolve_trace

    trace = resolve_trace(workload, probe_refs, seed=seed)
    num_blocks = protected_bytes // block_size
    seen: dict[int, None] = {}
    for addr in trace.addrs:
        folded = (addr // block_size) % num_blocks * block_size
        if folded not in seen:
            seen[folded] = None
            if len(seen) >= size:
                break
    return list(seen)


def generate_ops(rng: random.Random, addresses: list[int],
                 num_ops: int = 32) -> tuple[Op, ...]:
    """Generate one seeded schedule over a working set."""
    ops: list[Op] = []
    value = rng.randrange(256)
    for _ in range(num_ops):
        roll = rng.random()
        address = rng.choice(addresses)
        if roll < 0.40:
            value += 1
            ops.append(Op("write", address, value & 0xFF))
        elif roll < 0.75:
            ops.append(Op("read", address))
        elif roll < 0.90:
            ops.append(Op("evict", address))
        elif roll < 0.96:
            value += 8
            ops.append(Op("storm", address, value & 0xFF,
                          count=rng.randrange(3, 9)))
        else:
            ops.append(Op("flush"))
    return tuple(ops)


@dataclass(frozen=True)
class Scenario:
    """One deterministic experiment: preset + schedule + at most one fault.

    ``fault_at`` injects the fault immediately before executing
    ``ops[fault_at]`` (clamped to the end of the schedule); when ``None``
    and the fault carries a trigger, the fault is armed on the adversarial
    device instead.  ``weaken`` names a deliberate sabotage of the system
    under test (currently ``"no-tree"``: the Merkle tree is detached after
    construction) used to prove the oracle catches a weakened system.
    ``recovery`` names a :class:`~repro.core.config.RecoveryPolicy` value
    (``"halt"``/``"quarantine_page"``/``"degrade"``); when set, the system
    under test runs with integrity-violation recovery enabled.

    ``workload`` records which named workload (if any) shaped the working
    set, and ``workload_id`` its path-independent identity
    (:func:`repro.workloads.canonical_workload_id` — for recorded traces
    that is ``trace-<fingerprint>``, so a reproducer generated against a
    trace file stays attributable even if the file moves).  Both default
    to ``None`` so reproducers from older reports load unchanged.
    """

    preset: str
    seed: int
    ops: tuple[Op, ...]
    fault: FaultSpec | None = None
    fault_at: int | None = None
    mac_bits: int | None = None
    weaken: str | None = None
    recovery: str | None = None
    workload: str | None = None
    workload_id: str | None = None

    def to_dict(self) -> dict:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "ops": [op.to_dict() for op in self.ops],
            "fault": self.fault.to_dict() if self.fault else None,
            "fault_at": self.fault_at,
            "mac_bits": self.mac_bits,
            "weaken": self.weaken,
            "recovery": self.recovery,
            "workload": self.workload,
            "workload_id": self.workload_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        fault = data.get("fault")
        return cls(
            preset=data["preset"],
            seed=data["seed"],
            ops=tuple(Op.from_dict(op) for op in data["ops"]),
            fault=FaultSpec.from_dict(fault) if fault else None,
            fault_at=data.get("fault_at"),
            mac_bits=data.get("mac_bits"),
            weaken=data.get("weaken"),
            recovery=data.get("recovery"),
            workload=data.get("workload"),
            workload_id=data.get("workload_id"),
        )

    def with_ops(self, ops: tuple[Op, ...],
                 fault_at: int | None = None) -> "Scenario":
        return replace(self, ops=ops, fault_at=fault_at)


def generate_scenario(preset: str, seed: int, *,
                      fault_kind: FaultKind | None = None,
                      num_ops: int = 32, weaken: str | None = None,
                      mac_bits: int | None = None,
                      recovery: str | None = None,
                      workload: str | None = None) -> Scenario:
    """Build one seeded scenario for a preset.

    The schedule depends only on ``seed`` (not on the preset), so the same
    seed replays an identical operation stream through every scheme — the
    cross-preset half of the differential oracle.  ``workload`` swaps the
    stratified working set for one sampled from a named workload's access
    stream (see :func:`workload_working_set`); the default keeps every
    historical seed identical.
    """
    rng = random.Random(seed)
    if workload is None:
        addresses = working_set(rng)
        workload_id = None
    else:
        from repro.workloads import canonical_workload_id

        # rng still burns the same working_set draws so the op stream
        # downstream of this point matches the workload-less schedule
        stratified = working_set(rng)
        addresses = workload_working_set(workload, seed)
        if len(addresses) < 2:     # degenerate stream: keep faults targetable
            addresses = (addresses + [a for a in stratified
                                      if a not in addresses])[:len(stratified)]
        workload_id = canonical_workload_id(workload)
    ops = generate_ops(rng, addresses, num_ops=num_ops)
    fault = None
    fault_at = None
    if fault_kind is not None:
        bits = rng.choice((1, 2, 5))
        if fault_kind is FaultKind.TRANSIENT_FLIP:
            # Extra draw only for the transient kind, so every existing
            # (persistent) seed still replays bit-for-bit.
            fault = FaultSpec(kind=fault_kind, bits=bits,
                              duration=rng.choice((1, 2, 3)))
        elif fault_kind is FaultKind.COLD_BOOT:
            # Same discipline: the decay draw happens only for this kind.
            fault = FaultSpec(kind=fault_kind, bits=bits,
                              decay=rng.choice((0.01, 0.02, 0.05)))
        else:
            fault = FaultSpec(kind=fault_kind, bits=bits)
        # Inject in the second half of the schedule so enough state has
        # reached DRAM to give the fault a target.
        low = max(1, num_ops // 2)
        fault_at = rng.randrange(low, num_ops) if num_ops > low else low
    return Scenario(preset=preset, seed=seed, ops=ops, fault=fault,
                    fault_at=fault_at, mac_bits=mac_bits, weaken=weaken,
                    recovery=recovery, workload=workload,
                    workload_id=workload_id)
