#!/usr/bin/env python3
"""Counter overflow and page re-encryption, interactively.

Shows the two halves of the split-counter argument:

1. *Overflow horizons* — measure counter growth on a write-hot workload
   and extrapolate when each organization forces an entire-memory
   re-encryption (Table 2's methodology).
2. *Page re-encryption in action* — run split counters with tiny minor
   counters so overflows happen constantly, and watch the RSR machinery
   absorb them: blocks found on-chip are lazily dirty-marked, the rest
   are fetched and immediately re-written, and execution never stalls.

Run:  python examples/reencryption_study.py
"""

from repro.analysis import estimate_overflow
from repro.core import SecureMemorySystem, mono_config, split_config
from repro.core.config import CounterOrg, make_counter_config
from repro.sim import simulate
from repro.workloads import generate_trace
from repro.workloads.generators import WorkloadProfile


def write_hot_profile() -> WorkloadProfile:
    """A pool of hot pages that conflict in the L2 and write back often."""
    return WorkloadProfile(
        name="write-hot", mean_gap=3.0, write_fraction=0.55,
        w_hot=0.10, w_stream=0.10, w_random=0.0, w_pages=0.80,
        w_thrash=0.0, hot_bytes=8 * 1024, stream_bytes=4 * 1024 * 1024,
        random_bytes=64 * 1024, page_pool_pages=16, page_burst=24,
        page_stride=32,
    )


def overflow_horizons(trace) -> None:
    print("=== 1. Time to counter overflow (extrapolated from growth "
          "rate) ===\n")
    for label, config, bits in [
        ("Mono8b", mono_config(8), 8),
        ("Mono16b", mono_config(16), 16),
        ("Mono32b", mono_config(32), 32),
        ("Mono64b", mono_config(64), 64),
        ("Global32b", make_counter_config(CounterOrg.GLOBAL32), 32),
    ]:
        result = simulate(config, trace, warmup_refs=len(trace) // 3)
        scheme = result.memory.scheme
        fastest = (scheme.global_counter if hasattr(scheme, "global_counter")
                   else scheme.fastest_counter())
        est = estimate_overflow(bits, fastest, result.seconds)
        print(f"  {label:<10} fastest counter rate "
              f"{est.growth_rate_per_s:>12,.0f}/s -> overflow in "
              f"{est.human}")
    print("\n  Each overflow of a monolithic/global counter freezes the "
          "system for an\n  entire-memory re-encryption; 64-bit counters "
          "push that past the machine's\n  lifetime but cost cache reach "
          "(Figure 4's Mono64b bars).\n")


def page_reencryption(trace) -> None:
    print("=== 2. Split counters: page re-encryption via RSRs ===\n")
    result = simulate(split_config(minor_bits=2, name="split-m2"), trace,
                      warmup_refs=len(trace) // 3)
    st = result.memory.stats.reencryption
    print(f"  page re-encryptions   : {st.page_reencryptions}")
    print(f"  blocks already on-chip: {st.blocks_found_onchip} "
          f"({st.onchip_fraction:.0%} — paper reports ~48%)")
    print(f"  blocks fetched by RSR : {st.blocks_fetched}")
    print(f"  untouched (skipped)   : {st.blocks_untouched}")
    print(f"  mean cycles per page  : {st.mean_page_cycles:,.0f} "
          f"(overlapped with execution)")
    print(f"  max concurrent RSRs   : {st.max_concurrent_rsrs} of 8")
    print(f"  write-back stalls     : {st.rsr_stalls}")

    print("\n=== 3. Functional cross-check: data survives re-encryption "
          "===\n")
    system = SecureMemorySystem(split_config(minor_bits=2),
                                protected_bytes=64 * 1024, l2_size=2 * 1024)
    for i in range(40):  # force several overflows of block 0's minor
        system.write_block(0, bytes([i]) * 64)
        system.flush()
    assert system.read_block(0) == bytes([39]) * 64
    print(f"  40 rewrites of one block -> "
          f"{system.stats.reencryption.page_reencryptions} page "
          f"re-encryptions, data intact, major counter now "
          f"{system.counter_scheme.major_counter(0)}")


def main() -> None:
    trace = generate_trace(write_hot_profile(), 60_000)
    overflow_horizons(trace)
    page_reencryption(trace)


if __name__ == "__main__":
    main()
