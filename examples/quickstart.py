#!/usr/bin/env python3
"""Quickstart: a secure memory that encrypts, authenticates, and detects.

Builds the paper's full design — split-counter AES encryption, GCM
authentication, a Merkle tree over data and counters — writes some secrets
through it, shows that the DRAM image is opaque ciphertext, and
demonstrates that tampering with that image is detected.

Run:  python examples/quickstart.py
"""

from repro import IntegrityViolation, SecureMemorySystem, split_gcm_config


def main() -> None:
    # One megabyte of protected memory behind a 16KB on-chip cache.
    memory = SecureMemorySystem(split_gcm_config(),
                                protected_bytes=1 << 20,
                                l2_size=16 * 1024)

    # 1. Ordinary reads and writes, byte-granular.
    memory.write(0x1000, b"attack at dawn")
    memory.write(0x2345, (1234567).to_bytes(8, "little"))
    assert memory.read(0x1000, 14) == b"attack at dawn"
    assert int.from_bytes(memory.read(0x2345, 8), "little") == 1234567
    print("[1] read/write through the secure memory: OK")

    # 2. What the bus snooper sees: ciphertext, not the secret.
    memory.flush()  # push dirty state to DRAM
    dram_image = memory.dram.peek(0x1000 & ~63)
    assert b"attack at dawn" not in dram_image
    print(f"[2] DRAM image of the secret block: {dram_image[:16].hex()}... "
          "(ciphertext)")

    # 3. An active attacker flips one bit in DRAM.
    memory.l2.invalidate(0x1000 & ~63)  # victim will re-fetch from DRAM
    tampered = bytearray(dram_image)
    tampered[0] ^= 0x01
    memory.dram.poke(0x1000 & ~63, bytes(tampered))
    try:
        memory.read(0x1000, 14)
        raise SystemExit("tampering went UNDETECTED — this is a bug")
    except IntegrityViolation as exc:
        print(f"[3] tampering detected by the Merkle tree: {exc}")

    # 4. Inspect what the machinery did.
    print(f"[4] stats: {memory.stats.reads} block fetches, "
          f"{memory.stats.writes} write-backs, "
          f"{memory.stats.counter_fetches} counter fetches, "
          f"{memory.merkle.stats.mac_computations} MACs computed, "
          f"{memory.integrity_violations} violation(s) detected")


if __name__ == "__main__":
    main()
