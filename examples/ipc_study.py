#!/usr/bin/env python3
"""IPC study: compare secure-memory schemes on a workload of your choice.

A miniature of the paper's Figure 4/9 experiments: pick a SPEC-like
workload, simulate the baseline and a set of schemes on the identical
trace, and print normalized IPC plus the microarchitectural reasons
behind each number (counter-cache hit rate, timely pads, bus pressure).

Run:  python examples/ipc_study.py [app] [refs]
      python examples/ipc_study.py mcf 80000
"""

import sys

from repro.core import (
    baseline_config,
    direct_config,
    mono_config,
    mono_sha_config,
    split_config,
    split_gcm_config,
)
from repro.sim import simulate
from repro.workloads import SPEC_APPS, spec_trace


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "swim"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    warmup = refs // 3
    if app not in SPEC_APPS:
        raise SystemExit(f"unknown app {app!r}; choose from "
                         f"{', '.join(SPEC_APPS)}")

    print(f"workload: {app}, {refs} memory references "
          f"({warmup} warm-up)\n")
    trace = spec_trace(app, refs)
    baseline = simulate(baseline_config(), trace, warmup_refs=warmup)
    print(f"baseline: IPC={baseline.ipc:.3f}, "
          f"{baseline.l2_misses / baseline.instructions * 1000:.1f} L2 "
          f"misses per kilo-instruction, bus utilization "
          f"{baseline.memory.bus.utilization(baseline.cycles):.0%}\n")

    schemes = [split_config(), mono_config(64), direct_config(),
               split_gcm_config(), mono_sha_config()]
    header = (f"{'scheme':<12} {'norm. IPC':>9} {'overhead':>9} "
              f"{'ctr hit':>8} {'timely pads':>12} {'bus util':>9}")
    print(header)
    print("-" * len(header))
    for config in schemes:
        result = simulate(config, trace, warmup_refs=warmup)
        nipc = result.ipc / baseline.ipc
        memory = result.memory
        counter_hit = (f"{memory.counter_cache.stats.hit_rate:.0%}"
                       if memory.counter_cache else "-")
        timely = (f"{memory.stats.pads.timely_rate:.0%}"
                  if memory.stats.pads.pad_requests else "-")
        print(f"{config.name:<12} {nipc:>9.3f} {1 - nipc:>8.1%} "
              f"{counter_hit:>8} {timely:>12} "
              f"{memory.bus.utilization(result.cycles):>9.0%}")

    print("\nReading the table: split counters keep the counter-cache hit "
          "rate high and pads timely,\nso their overhead stays near the "
          "baseline; monolithic 64-bit counters thrash the counter\ncache; "
          "direct AES serializes decryption after every fetch; the "
          "combined Split+GCM\nadds authentication for a few points more, "
          "while Mono+SHA pays the full SHA-1 latency.")


if __name__ == "__main__":
    main()
