#!/usr/bin/env python3
"""IPC study: compare secure-memory schemes on a workload of your choice.

A miniature of the paper's Figure 4/9 experiments: pick a SPEC-like
workload, simulate the baseline and a set of schemes on the identical
trace, and print normalized IPC plus the microarchitectural reasons
behind each number (counter-cache hit rate, timely pads, bus pressure).

Run:  python examples/ipc_study.py [app] [refs]
      python examples/ipc_study.py mcf 80000
"""

import sys

from repro.api import Experiment, get_config
from repro.workloads import SPEC_APPS, spec_trace


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "swim"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    warmup = refs // 3
    if app not in SPEC_APPS:
        raise SystemExit(f"unknown app {app!r}; choose from "
                         f"{', '.join(SPEC_APPS)}")

    print(f"workload: {app}, {refs} memory references "
          f"({warmup} warm-up)\n")
    trace = spec_trace(app, refs)

    schemes = ["split", "mono64b", "direct", "split+gcm", "mono+sha"]
    header = (f"{'scheme':<12} {'norm. IPC':>9} {'overhead':>9} "
              f"{'ctr hit':>8} {'timely pads':>12} {'bus util':>9}")
    baseline = None
    for name in schemes:
        experiment = Experiment(get_config(name), trace, refs=refs,
                                warmup_refs=warmup, baseline=baseline)
        result = experiment.run()
        if baseline is None:
            baseline = experiment.baseline_result
            print(f"baseline: IPC={baseline.ipc:.3f}, "
                  f"{baseline.l2_misses / baseline.instructions * 1000:.1f} "
                  f"L2 misses per kilo-instruction, bus utilization "
                  f"{baseline.memory.bus.utilization(baseline.cycles):.0%}\n")
            print(header)
            print("-" * len(header))
        counter_hit = (f"{result.counter_cache_hit_rate:.0%}"
                       if result.counter_cache_hit_rate is not None else "-")
        timely = (f"{result.timely_pad_rate:.0%}"
                  if result.timely_pad_rate is not None else "-")
        print(f"{result.scheme:<12} {result.normalized_ipc:>9.3f} "
              f"{result.overhead:>8.1%} {counter_hit:>8} {timely:>12} "
              f"{result.bus_utilization:>9.0%}")

    print("\nReading the table: split counters keep the counter-cache hit "
          "rate high and pads timely,\nso their overhead stays near the "
          "baseline; monolithic 64-bit counters thrash the counter\ncache; "
          "direct AES serializes decryption after every fetch; the "
          "combined Split+GCM\nadds authentication for a few points more, "
          "while Mono+SHA pays the full SHA-1 latency.")


if __name__ == "__main__":
    main()
