#!/usr/bin/env python3
"""Hardware-attack demonstration, including the counter-replay pitfall.

Stages the paper's threat model against three configurations:

* encryption only (Figure 4's world) — secrecy holds, integrity doesn't;
* encryption + GCM data authentication *without* counter authentication —
  the section 4.3 pitfall: rolling back an evicted counter block forces
  pad reuse, silently leaking plaintext relationships;
* the paper's full design with counters as Merkle-tree leaves — the same
  attack is detected the moment the poisoned counter comes on-chip.

Run:  python examples/attack_demo.py
"""

from repro import SecureMemorySystem, split_config, split_gcm_config
from repro.attacks import (
    counter_replay_attack,
    replay_attack,
    snoop_secrecy_attack,
    spoof_attack,
)
from repro.crypto.ctr import xor_bytes


def small_system(config):
    """A system staged for the attack: tiny counter cache, small L2."""
    return SecureMemorySystem(config, protected_bytes=512 * 1024,
                              l2_size=4 * 1024, l2_assoc=2)


def banner(text):
    print(f"\n=== {text} ===")


def main() -> None:
    v2, v3 = b"\xaa" * 64, b"\x55" * 64

    banner("Encryption only (no authentication)")
    system = small_system(split_config(counter_cache_size=64,
                                       counter_cache_assoc=1))
    print(snoop_secrecy_attack(system, 0x8000, b"SECRET".ljust(64, b".")))
    print(spoof_attack(system, 0x9000))
    report = counter_replay_attack(system, 0, v2, v3,
                                   scratch_base=128 * 1024)
    print(report)
    if report.succeeded:
        leak = xor_bytes(report.evidence["ciphertext_v2"],
                         report.evidence["ciphertext_v3"])
        print(f"    snooper recovers pt2^pt3 = {leak[:8].hex()}... "
              f"(expected {(xor_bytes(v2, v3))[:8].hex()}...)")

    # Each staged attack below gets a fresh victim system: a detected
    # attack leaves the DRAM image corrupted, and the real machine would
    # have halted or taken corrective action at that point.
    banner("GCM data authentication, counters NOT authenticated "
           "(the section 4.3 flaw)")
    flawed_config = split_gcm_config(counter_cache_size=64,
                                     counter_cache_assoc=1,
                                     authenticate_counters=False)
    print(spoof_attack(small_system(flawed_config), 0x9000))  # caught
    print(counter_replay_attack(small_system(flawed_config), 0, v2, v3,
                                scratch_base=128 * 1024))     # NOT caught

    banner("Full design: counters are Merkle leaves (the paper's fix)")
    full_config = split_gcm_config(counter_cache_size=64,
                                   counter_cache_assoc=1)
    print(spoof_attack(small_system(full_config), 0x9000))
    print(replay_attack(small_system(full_config), 0xA000,
                        b"old".ljust(64, b"\0"),
                        b"new".ljust(64, b"\0"), replay_code_block=True))
    print(counter_replay_attack(small_system(full_config), 0, v2, v3,
                                scratch_base=128 * 1024))


if __name__ == "__main__":
    main()
